//! The Flux-decorated Android Interface Definition Language.
//!
//! Flux's Selective Record mechanism is configured by *decorating* AIDL
//! interface definitions with four constructs (Table 1 of the paper):
//!
//! | Syntax | Purpose |
//! |---|---|
//! | `@record` | Record calls to this method. |
//! | `@drop m, …` | Remove all previous calls to the listed methods. |
//! | `@if a, …` / `@elif a, …` | Qualify `@drop` to matching arguments. |
//! | `@replayproxy path` | Call a proxy instead when replaying. |
//! | `this` | The method being decorated. |
//!
//! This crate parses that dialect ([`parse()`]), compiles decorations into
//! per-method rule tables ([`compile()`]) consumed by the record runtime in
//! `flux-core`, and measures decoration LOC ([`decoration_loc`]) so the
//! Table 2 harness can regenerate the paper's per-service LOC column from
//! the same sources.
//!
//! # Examples
//!
//! ```
//! let iface = flux_aidl::parse_one(r#"
//! interface IAlarmManager {
//!     @record {
//!         @drop this, remove;
//!         @if operation;
//!         @replayproxy flux.recordreplay.Proxies.alarmMgrSet;
//!     }
//!     void set(int type, long triggerAtTime, in PendingIntent operation);
//!     @record {
//!         @drop this, set;
//!         @if operation;
//!     }
//!     void remove(in PendingIntent operation);
//! }
//! "#).unwrap();
//! let compiled = flux_aidl::compile(&iface).unwrap();
//! assert!(compiled.rule("set").unwrap().recorded);
//! ```

pub mod ast;
pub mod compile;
pub mod loc;
pub mod parse;

pub use ast::{Direction, DropTarget, InterfaceDef, MethodDef, Param, RecordRule};
pub use compile::{compile, CompileError, CompiledDrop, CompiledInterface, CompiledRule, MatchSig};
pub use loc::decoration_loc;
pub use parse::{parse, parse_one, ParseError};
