//! Event-sourced service core for the Flux reproduction: a CRC-framed
//! append-only journal, state snapshots, and crash-recovery replay.
//!
//! The simulation crates answer "what does one run of scenario X look
//! like?"; this crate turns that into a *service* that survives being
//! killed. The pieces, bottom-up:
//!
//! * [`wire`] — the length-prefixed, CRC-32-checked frame format shared by
//!   journal segments and snapshot files; torn writes are detected at the
//!   exact byte where the valid prefix ends.
//! * [`journal`] — an append-only, segment-rotated event log whose
//!   [`Journal::open`] tolerates truncated tails: the first undecodable
//!   frame ends the recovered prefix and disk is rewritten to match, so
//!   appends always continue from a consistent state.
//! * [`event`] — the [`WorldEvent`] vocabulary: *input facts* (what the
//!   outside world said) that replay re-applies, and *audit facts* (what
//!   the service derived) that replay re-computes and verifies.
//! * [`snapshot`] — CRC-framed state snapshots with newest-valid
//!   selection, so recovery replays a suffix instead of all of history.
//! * [`service`] — [`ServiceCore`]: write-ahead-logged request admission
//!   over the fleet scheduler, deterministic fresh-world-per-batch
//!   execution, snapshot cadence, and the recovery algorithm. A recovered
//!   service is byte-identical (reports, telemetry exports, clock, RNG)
//!   to one that never crashed — the crash-recovery proptests cut the
//!   journal at arbitrary byte offsets to enforce exactly that.
//! * [`protocol`] — the line protocol `flux-served` speaks to observers
//!   over TCP, kept as a pure function for socket-free testing.
//!
//! ```no_run
//! use flux_journal::{RequestSpec, ScenarioSpec, ServiceConfig, ServiceCore};
//!
//! let mut svc = ServiceCore::open(
//!     "/tmp/flux-served",
//!     ScenarioSpec::default(),
//!     ServiceConfig::default(),
//! )?;
//! svc.submit(RequestSpec { id: 1, pair: 0, package: "com.whatsapp".into(), priority: 0 })?;
//! let record = svc.step_batch()?.expect("one pending request");
//! assert_eq!(record.report.completed, 1);
//! # Ok::<(), flux_journal::ServiceError>(())
//! ```

pub mod event;
pub mod journal;
pub mod protocol;
pub mod service;
pub mod snapshot;
pub mod wire;

pub use event::{RequestSpec, ScenarioSpec, WorldEvent};
pub use journal::{Journal, JournalConfig, JournalError, Recovered};
pub use protocol::{handle_line, handle_line_shared, Response};
pub use service::{
    BatchRecord, ExecutedBatch, PreparedBatch, RecoveryInfo, ServiceConfig, ServiceCore,
    ServiceError, SubmitAck,
};
pub use snapshot::SnapshotStore;
