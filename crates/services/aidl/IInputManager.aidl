// InputManagerService, Flux-decorated: keyboard-layout associations are the
// per-app state that must survive migration.
interface IInputManager {
    InputDevice getInputDevice(int deviceId);
    int[] getInputDeviceIds();
    boolean hasKeys(int deviceId, int sourceMask, in int[] keyCodes, out boolean[] keyExists);
    boolean injectInputEvent(in InputEvent ev, int mode);
    KeyboardLayout[] getKeyboardLayouts();
    KeyboardLayout getKeyboardLayout(String keyboardLayoutDescriptor);
    String getCurrentKeyboardLayoutForInputDevice(in InputDeviceIdentifier identifier);
    @record {
        @drop this; @if identifier;
    }
    void setCurrentKeyboardLayoutForInputDevice(in InputDeviceIdentifier identifier, String keyboardLayoutDescriptor);
    String[] getKeyboardLayoutsForInputDevice(in InputDeviceIdentifier identifier);
    @record {
        @drop this;
        @if identifier, keyboardLayoutDescriptor;
    }
    void addKeyboardLayoutForInputDevice(in InputDeviceIdentifier identifier, String keyboardLayoutDescriptor);
    @record {
        @drop this, addKeyboardLayoutForInputDevice;
        @if identifier, keyboardLayoutDescriptor;
    }
    void removeKeyboardLayoutForInputDevice(in InputDeviceIdentifier identifier, String keyboardLayoutDescriptor);
    void registerInputDevicesChangedListener(in IInputDevicesChangedListener listener);
    void tryPointerSpeed(int speed);
    void setPointerSpeed(int speed);
    void vibrate(int deviceId, in long[] pattern, int repeat, in IBinder token);
}
