//! Pipelined-migration ablation: engine (serial vs pipelined) × image
//! cache (cold vs warm), on the same seeds.
//!
//! Grid cells:
//!
//! * **serial / cold** — `MigrationConfig::default()`, a fresh world: the
//!   exact configuration the seed-recorded figures were captured under.
//! * **overlap / cold** — stage overlap alone, so the compression-behind-
//!   the-radio saving is visible before pre-copy shrinks the residue to a
//!   chunk or two.
//! * **serial / warm** — the content-addressed cache enabled; the measured
//!   migration repeats an earlier round trip so the guest already holds
//!   the image's chunks.
//! * **pipelined / cold** — pre-copy plus stage overlap, no cache.
//! * **pipelined / warm** — the full engine: pre-copy, overlap and cache.
//!
//! Per cell the table reports the mean user-perceived wait, wall-clock
//! migration time, post-freeze bytes shipped by the transfer stage,
//! pre-copy streamed bytes, cache-hit bytes and overlap-hidden latency.
//! The binary runs the whole grid twice and fails if the two passes
//! differ by a byte — pipelining and caching must not cost determinism.
//!
//! ```text
//! ablation_pipeline [--smoke] [--out DIR]
//! ```

use flux_core::{migrate, pair, MigrationConfig, MigrationReport, MigrationSpec, WorldBuilder};
use flux_device::DeviceProfile;
use flux_simcore::{ByteSize, SimDuration};
use flux_workloads::spec;
use std::fmt::Write as _;
use std::process::ExitCode;

/// Seeds per cell (means are across these; everything is deterministic).
const SEEDS: [u64; 3] = [11, 12, 13];
/// The measured app: a large image with plenty of dirtied heap.
const APP: &str = "Candy Crush Saga";

struct Cell {
    name: &'static str,
    cfg: MigrationConfig,
    warm: bool,
}

fn grid() -> Vec<Cell> {
    let serial = MigrationConfig::default();
    let serial_cache = MigrationConfig {
        image_cache: true,
        ..MigrationConfig::default()
    };
    let overlap_only = MigrationConfig {
        pipeline: true,
        ..MigrationConfig::default()
    };
    let piped_cold = MigrationConfig {
        precopy: true,
        pipeline: true,
        ..MigrationConfig::default()
    };
    vec![
        Cell {
            name: "serial    / cold",
            cfg: serial,
            warm: false,
        },
        Cell {
            name: "overlap   / cold",
            cfg: overlap_only,
            warm: false,
        },
        Cell {
            name: "serial    / warm",
            cfg: serial_cache,
            warm: true,
        },
        Cell {
            name: "pipelined / cold",
            cfg: piped_cold,
            warm: false,
        },
        Cell {
            name: "pipelined / warm",
            cfg: MigrationConfig::pipelined(),
            warm: true,
        },
    ]
}

/// One cell migration. Warm cells round-trip the app (phone → tablet →
/// phone) first so the measured phone → tablet repeat finds the tablet's
/// cache populated.
fn run_one(seed: u64, cfg: &MigrationConfig, warm: bool) -> Result<MigrationReport, String> {
    let app = spec(APP).expect("app is in Table 3");
    let (mut world, ids) = WorldBuilder::new()
        .seed(seed)
        .device("phone", DeviceProfile::nexus4())
        .device("tablet", DeviceProfile::nexus7_2013())
        .app(0, app.clone())
        .build()
        .map_err(|e| e.to_string())?;
    let (phone, tablet) = (ids[0], ids[1]);
    world
        .run_script(phone, &app.package, &app.actions.clone())
        .map_err(|e| e.to_string())?;
    pair(&mut world, phone, tablet).map_err(|e| e.to_string())?;
    if warm {
        migrate(
            &mut world,
            MigrationSpec::new(&app.package)
                .between(phone, tablet)
                .config(*cfg),
        )
        .map_err(|e| e.to_string())?;
        pair(&mut world, tablet, phone).map_err(|e| e.to_string())?;
        migrate(
            &mut world,
            MigrationSpec::new(&app.package)
                .between(tablet, phone)
                .config(*cfg),
        )
        .map_err(|e| e.to_string())?;
    }
    migrate(
        &mut world,
        MigrationSpec::new(&app.package)
            .between(phone, tablet)
            .config(*cfg),
    )
    .map_err(|e| e.to_string())
}

fn mean_duration(xs: &[SimDuration]) -> SimDuration {
    SimDuration::from_nanos(xs.iter().map(|d| d.as_nanos()).sum::<u64>() / xs.len() as u64)
}

fn mean_bytes(xs: &[ByteSize]) -> ByteSize {
    ByteSize::from_bytes(xs.iter().map(|b| b.as_u64()).sum::<u64>() / xs.len() as u64)
}

/// Runs the full grid and renders the table; returns the rendered report
/// plus the (serial/cold, pipelined/warm) mean user-perceived times.
fn run_grid(seeds: &[u64]) -> Result<(String, SimDuration, SimDuration), String> {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Pipelined-migration ablation: {APP}, Nexus 4 -> Nexus 7 (2013), {} seed(s)\n",
        seeds.len()
    );
    let _ = writeln!(
        out,
        "{:<18} {:>12} {:>12} {:>12} {:>12} {:>12} {:>12}",
        "engine / cache", "perceived", "wall", "shipped", "precopy", "cache hit", "overlap"
    );
    let mut serial_cold = SimDuration::ZERO;
    let mut piped_warm = SimDuration::ZERO;
    for cell in grid() {
        let mut perceived = Vec::new();
        let mut wall = Vec::new();
        let mut shipped = Vec::new();
        let mut precopy = Vec::new();
        let mut cache_hit = Vec::new();
        let mut overlap = Vec::new();
        for &seed in seeds {
            let r = run_one(seed, &cell.cfg, cell.warm)
                .map_err(|e| format!("{} seed {seed}: {e}", cell.name))?;
            perceived.push(r.stages.user_perceived());
            wall.push(r.stages.wall_total());
            shipped.push(r.ledger.total());
            precopy.push(r.ledger.precopy_streamed);
            cache_hit.push(r.ledger.cache_hit);
            overlap.push(r.stages.overlap_saved);
        }
        let p = mean_duration(&perceived);
        match cell.name {
            "serial    / cold" => serial_cold = p,
            "pipelined / warm" => piped_warm = p,
            _ => {}
        }
        let _ = writeln!(
            out,
            "{:<18} {:>12} {:>12} {:>12} {:>12} {:>12} {:>12}",
            cell.name,
            format!("{p}"),
            format!("{}", mean_duration(&wall)),
            format!("{}", mean_bytes(&shipped)),
            format!("{}", mean_bytes(&precopy)),
            format!("{}", mean_bytes(&cache_hit)),
            format!("{}", mean_duration(&overlap)),
        );
    }
    Ok((out, serial_cold, piped_warm))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out_dir: Option<String> = None;
    let mut seeds: &[u64] = &SEEDS;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--smoke" => seeds = &SEEDS[..1],
            "--out" => match it.next() {
                Some(dir) => out_dir = Some(dir.clone()),
                None => {
                    eprintln!("ablation_pipeline: --out needs a value");
                    return ExitCode::FAILURE;
                }
            },
            "--help" | "-h" => {
                println!("usage: ablation_pipeline [--smoke] [--out DIR]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("ablation_pipeline: unknown flag {other}");
                return ExitCode::FAILURE;
            }
        }
    }

    // Two full passes: virtual time owes us byte-identical tables.
    let (table, serial_cold, piped_warm) = match run_grid(seeds) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("ablation_pipeline: {e}");
            return ExitCode::FAILURE;
        }
    };
    match run_grid(seeds) {
        Ok((second, _, _)) if second == table => {}
        Ok(_) => {
            eprintln!("ablation_pipeline: two passes over the same seeds diverged");
            return ExitCode::FAILURE;
        }
        Err(e) => {
            eprintln!("ablation_pipeline: repeat pass failed: {e}");
            return ExitCode::FAILURE;
        }
    }
    if piped_warm >= serial_cold {
        eprintln!(
            "ablation_pipeline: pipelined/warm ({piped_warm}) not faster than serial/cold ({serial_cold})"
        );
        return ExitCode::FAILURE;
    }

    print!("{table}");
    println!("\npipelined/warm cuts the perceived wait from {serial_cold} to {piped_warm}; both passes byte-identical");

    if let Some(dir) = out_dir {
        let dir = std::path::Path::new(&dir);
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("ablation_pipeline: cannot create {}: {e}", dir.display());
            return ExitCode::FAILURE;
        }
        if let Err(e) = std::fs::write(dir.join("ablation_pipeline.txt"), &table) {
            eprintln!("ablation_pipeline: cannot write artifact: {e}");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
