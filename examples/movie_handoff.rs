//! Movie handoff: the paper's motivating Netflix scenario (§1).
//!
//! "It is possible to begin a movie using the Netflix app on a phone and
//! switch to a larger screen to continue watching." The app holds audio
//! focus and a music-stream volume; on the tablet the volume is *rescaled*
//! by the Adaptive Replay proxy because phone and tablet volume ranges
//! differ, and the app is told its connection dropped and a new one exists.
//!
//! Run with: `cargo run --example movie_handoff`

use flux_core::{migrate, pair, MigrationSpec, WorldBuilder};
use flux_device::DeviceProfile;
use flux_services::svc::audio::{AudioService, STREAM_MUSIC};
use flux_services::Event;
use flux_workloads::spec;

fn main() {
    let netflix = spec("Netflix").expect("Netflix is in Table 3");
    let (mut world, ids) = WorldBuilder::new()
        .seed(7)
        .device("phone", DeviceProfile::nexus4())
        .device("tablet", DeviceProfile::nexus7_2013())
        .app(0, netflix.clone())
        .build()
        .expect("world builds");
    let (phone, tablet) = (ids[0], ids[1]);
    world
        .run_script(phone, &netflix.package, &netflix.actions.clone())
        .expect("browse and start playback");

    let phone_volume = world
        .device(phone)
        .unwrap()
        .host
        .service::<AudioService>("audio")
        .unwrap()
        .stream_volume(STREAM_MUSIC);
    let phone_max = world
        .device(phone)
        .unwrap()
        .host
        .service::<AudioService>("audio")
        .unwrap()
        .max_volume();
    println!("On the phone: music volume {phone_volume}/{phone_max}, audio focus held.");

    pair(&mut world, phone, tablet).expect("pairing");
    let report = migrate(
        &mut world,
        MigrationSpec::new(&netflix.package).between(phone, tablet),
    )
    .expect("handoff");
    println!(
        "\nHandoff took {} ({} over the air); user-perceived {}.",
        report.stages.total(),
        report.ledger.total(),
        report.stages.user_perceived()
    );
    for note in &report.replay.notes {
        println!("  replay note: {note}");
    }

    // Volume rescaled into the tablet's range.
    let tablet_audio = world
        .device(tablet)
        .unwrap()
        .host
        .service::<AudioService>("audio")
        .unwrap();
    let tablet_volume = tablet_audio.stream_volume(STREAM_MUSIC);
    let tablet_max = tablet_audio.max_volume();
    println!("\nOn the tablet: music volume {tablet_volume}/{tablet_max} (rescaled).");
    assert_eq!(
        tablet_volume,
        (f64::from(phone_volume) * f64::from(tablet_max) / f64::from(phone_max)).round() as i32
    );

    // Audio focus followed the app.
    let uid = world
        .device(tablet)
        .unwrap()
        .app_uid(&netflix.package)
        .unwrap();
    assert_eq!(
        tablet_audio.focus_holder().map(|(u, _)| *u),
        Some(uid),
        "audio focus must be re-established on the guest"
    );

    // The app saw a connectivity interruption, not a broken socket.
    let app = world
        .device_mut(tablet)
        .unwrap()
        .apps
        .get_mut(&netflix.package)
        .unwrap();
    let connectivity_events = app
        .drain_inbox()
        .into_iter()
        .filter(
            |e| matches!(e, Event::Broadcast { intent } if intent.action.contains("CONNECTIVITY")),
        )
        .count();
    println!("Connectivity-change broadcasts delivered to the app: {connectivity_events}");
    println!("The movie resumes on the big screen.");
}
