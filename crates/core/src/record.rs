//! The Selective Record runtime.
//!
//! "During app execution, Flux selectively records an app's interactions
//! with system services through Binder's IPC mechanism ... The recorded log
//! is primarily used to restore the app-specific state of system services
//! once the app has migrated to a guest device ... It is kept small by
//! automatically discarding stale calls" (§3.1–3.2).
//!
//! The runtime consults the [`flux_aidl::CompiledInterface`] rules produced
//! from the decorated AIDL definitions: on every service call it applies
//! the `@drop`/`@if` matching against previous log entries, then records
//! (or suppresses) the new call. The paper stores the log in SQLite; here
//! it is an in-memory indexed log with the same semantics and a measured
//! wire size that feeds the transfer model.

use flux_aidl::{CompiledInterface, CompiledRule};
use flux_binder::Parcel;
use flux_simcore::{SimTime, Uid};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One recorded service call.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CallRecord {
    /// Monotonic sequence number within the app's log.
    pub seq: u64,
    /// ServiceManager name of the called service (e.g. `"alarm"`).
    pub service: String,
    /// AIDL descriptor (e.g. `"IAlarmManager"`).
    pub descriptor: String,
    /// Method name.
    pub method: String,
    /// Arguments, exactly as sent.
    pub args: Parcel,
    /// The reply the home device's service returned. Replay proxies need
    /// this when the return value carried a handle or descriptor the app
    /// kept using (the SensorService case, §3.2).
    pub reply: Parcel,
    /// Virtual time of the call.
    pub at: SimTime,
}

/// Outcome of offering one call to the recorder.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RecordOutcome {
    /// Whether the call was appended to the log.
    pub recorded: bool,
    /// How many previous entries the drop rules removed.
    pub dropped: usize,
    /// Whether recording was suppressed because a foreign drop matched
    /// (the `cancelNotification` pattern).
    pub suppressed: bool,
}

/// The per-app record log.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CallLog {
    entries: Vec<CallRecord>,
    next_seq: u64,
    /// Total calls ever offered (recorded or not), for overhead accounting.
    pub calls_seen: u64,
    /// Total entries ever dropped by rules.
    pub total_dropped: u64,
}

impl CallLog {
    /// Current log entries in sequence order.
    pub fn entries(&self) -> &[CallRecord] {
        &self.entries
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Approximate serialized size of the log in bytes (ships with the
    /// checkpoint; the paper reports logs under 200 KB compressed).
    pub fn wire_bytes(&self) -> u64 {
        self.entries
            .iter()
            .map(|e| {
                (e.service.len() + e.descriptor.len() + e.method.len()) as u64
                    + e.args.wire_size() as u64
                    + e.reply.wire_size() as u64
                    + 24
            })
            .sum()
    }

    /// Offers a call to the recorder under `iface`'s rules.
    ///
    /// Calls to methods without `@record` are counted but never stored.
    pub fn offer(
        &mut self,
        iface: &CompiledInterface,
        service: &str,
        method: &str,
        args: &Parcel,
        reply: &Parcel,
        at: SimTime,
    ) -> RecordOutcome {
        self.calls_seen += 1;
        let Some(rule) = iface.rule(method) else {
            return RecordOutcome {
                recorded: false,
                dropped: 0,
                suppressed: false,
            };
        };
        if !rule.recorded {
            return RecordOutcome {
                recorded: false,
                dropped: 0,
                suppressed: false,
            };
        }

        let (dropped, foreign_dropped) = self.apply_drops(rule, &iface.descriptor, args);
        self.total_dropped += dropped as u64;

        let suppressed = rule.suppress_on_foreign_drop && foreign_dropped > 0;
        if suppressed {
            return RecordOutcome {
                recorded: false,
                dropped,
                suppressed: true,
            };
        }
        self.next_seq += 1;
        self.entries.push(CallRecord {
            seq: self.next_seq,
            service: service.to_owned(),
            descriptor: iface.descriptor.clone(),
            method: method.to_owned(),
            args: args.clone(),
            reply: reply.clone(),
            at,
        });
        RecordOutcome {
            recorded: true,
            dropped,
            suppressed: false,
        }
    }

    /// Applies the rule's drop list against the log; returns
    /// `(total_dropped, foreign_dropped)`.
    fn apply_drops(
        &mut self,
        rule: &CompiledRule,
        descriptor: &str,
        args: &Parcel,
    ) -> (usize, usize) {
        let mut dropped = 0;
        let mut foreign = 0;
        for drop in &rule.drops {
            let before = self.entries.len();
            self.entries.retain(|e| {
                if e.descriptor != descriptor || e.method != drop.target {
                    return true;
                }
                // A previous call is dropped if ANY alternative signature
                // matches: all named args equal between the calls.
                let matches = drop.sigs.iter().any(|sig| {
                    sig.pairs.iter().all(|(caller_idx, target_idx)| {
                        match (args.get(*caller_idx), e.args.get(*target_idx)) {
                            (Ok(a), Ok(b)) => a == b,
                            _ => false,
                        }
                    })
                });
                !matches
            });
            let removed = before - self.entries.len();
            dropped += removed;
            if !drop.is_this {
                foreign += removed;
            }
        }
        (dropped, foreign)
    }

    /// Removes every entry for `service` (used when a service's state is
    /// reset wholesale, e.g. package data cleared).
    pub fn purge_service(&mut self, service: &str) -> usize {
        let before = self.entries.len();
        self.entries.retain(|e| e.service != service);
        before - self.entries.len()
    }
}

/// Record logs for every app on a device, keyed by UID.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct RecordStore {
    logs: BTreeMap<Uid, CallLog>,
}

impl RecordStore {
    /// The log for `uid`, created on first use.
    pub fn log_mut(&mut self, uid: Uid) -> &mut CallLog {
        self.logs.entry(uid).or_default()
    }

    /// The log for `uid`, if any calls were offered.
    pub fn log(&self, uid: Uid) -> Option<&CallLog> {
        self.logs.get(&uid)
    }

    /// Removes and returns the log for `uid` (shipped with a migration).
    pub fn take(&mut self, uid: Uid) -> CallLog {
        self.logs.remove(&uid).unwrap_or_default()
    }

    /// Installs a migrated log under a (possibly different) UID on the
    /// guest device.
    pub fn install(&mut self, uid: Uid, log: CallLog) {
        self.logs.insert(uid, log);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flux_aidl::{compile, parse_one};

    fn notification_iface() -> CompiledInterface {
        compile(
            &parse_one(
                r#"
interface INotificationManager {
    @record {
        @drop this;
        @if pkg, id;
    }
    void enqueueNotification(String pkg, int id, in Notification notification);
    @record {
        @drop this, enqueueNotification;
        @if pkg, id;
    }
    void cancelNotification(String pkg, int id);
    boolean areNotificationsEnabled(String pkg);
}
"#,
            )
            .unwrap(),
        )
        .unwrap()
    }

    fn enqueue(id: i32) -> Parcel {
        Parcel::new()
            .with_str("com.x")
            .with_i32(id)
            .with_blob(vec![0; 64])
    }

    fn cancel(id: i32) -> Parcel {
        Parcel::new().with_str("com.x").with_i32(id)
    }

    #[test]
    fn undecorated_methods_are_not_recorded() {
        let iface = notification_iface();
        let mut log = CallLog::default();
        let out = log.offer(
            &iface,
            "notification",
            "areNotificationsEnabled",
            &Parcel::new().with_str("com.x"),
            &Parcel::new(),
            SimTime::ZERO,
        );
        assert!(!out.recorded);
        assert!(log.is_empty());
        assert_eq!(log.calls_seen, 1);
    }

    #[test]
    fn cancel_erases_matching_enqueue_and_suppresses_itself() {
        let iface = notification_iface();
        let mut log = CallLog::default();
        log.offer(
            &iface,
            "notification",
            "enqueueNotification",
            &enqueue(1),
            &Parcel::new(),
            SimTime::ZERO,
        );
        log.offer(
            &iface,
            "notification",
            "enqueueNotification",
            &enqueue(2),
            &Parcel::new(),
            SimTime::ZERO,
        );
        assert_eq!(log.len(), 2);

        let out = log.offer(
            &iface,
            "notification",
            "cancelNotification",
            &cancel(1),
            &Parcel::new(),
            SimTime::ZERO,
        );
        assert!(out.suppressed);
        assert!(!out.recorded);
        assert_eq!(out.dropped, 1);
        // Only the id=2 enqueue survives; the cancel itself is absent.
        assert_eq!(log.len(), 1);
        assert_eq!(log.entries()[0].args.i32(1).unwrap(), 2);
    }

    #[test]
    fn cancel_without_match_is_recorded() {
        // A cancel for a notification posted before recording started must
        // itself be replayed (it may cancel state on the guest).
        let iface = notification_iface();
        let mut log = CallLog::default();
        let out = log.offer(
            &iface,
            "notification",
            "cancelNotification",
            &cancel(9),
            &Parcel::new(),
            SimTime::ZERO,
        );
        assert!(out.recorded);
        assert!(!out.suppressed);
        assert_eq!(log.len(), 1);
    }

    #[test]
    fn re_enqueue_replaces_previous_same_id() {
        let iface = notification_iface();
        let mut log = CallLog::default();
        log.offer(
            &iface,
            "notification",
            "enqueueNotification",
            &enqueue(1),
            &Parcel::new(),
            SimTime::ZERO,
        );
        let out = log.offer(
            &iface,
            "notification",
            "enqueueNotification",
            &enqueue(1),
            &Parcel::new(),
            SimTime::from_secs(1),
        );
        assert!(out.recorded);
        assert_eq!(out.dropped, 1);
        assert_eq!(log.len(), 1);
        assert_eq!(log.entries()[0].at, SimTime::from_secs(1));
    }

    #[test]
    fn wire_bytes_shrink_when_entries_drop() {
        let iface = notification_iface();
        let mut log = CallLog::default();
        log.offer(
            &iface,
            "notification",
            "enqueueNotification",
            &enqueue(1),
            &Parcel::new(),
            SimTime::ZERO,
        );
        let full = log.wire_bytes();
        log.offer(
            &iface,
            "notification",
            "cancelNotification",
            &cancel(1),
            &Parcel::new(),
            SimTime::ZERO,
        );
        assert!(log.wire_bytes() < full);
    }

    #[test]
    fn record_store_take_and_install() {
        let iface = notification_iface();
        let mut store = RecordStore::default();
        store.log_mut(Uid(10_001)).offer(
            &iface,
            "notification",
            "enqueueNotification",
            &enqueue(1),
            &Parcel::new(),
            SimTime::ZERO,
        );
        let log = store.take(Uid(10_001));
        assert_eq!(log.len(), 1);
        assert!(store.log(Uid(10_001)).is_none());
        let mut guest = RecordStore::default();
        guest.install(Uid(10_077), log);
        assert_eq!(guest.log(Uid(10_077)).unwrap().len(), 1);
    }
}
