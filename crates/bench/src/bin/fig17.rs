//! Figure 17: CDF of Google Play installation sizes across the PlayDrone
//! corpus, plus the setPreserveEGLContextOnPause census of §4.

use flux_playstore::{Corpus, PAPER_CORPUS_SIZE, PAPER_PRESERVE_EGL_COUNT};
use flux_simcore::ByteSize;

fn main() {
    // The paper-sized corpus (488,259 apps); generation is deterministic.
    let corpus = Corpus::paper_sized(63);

    println!(
        "Figure 17: Installation size of Google Play apps ({} apps)\n",
        corpus.len()
    );
    println!("{:>16}  {:>8}  bar", "Install size", "CDF");
    for (size, frac) in corpus.cdf_curve(2) {
        let bar = "#".repeat((frac * 50.0) as usize);
        println!("{:>16}  {:>7.3}  {bar}", format!("{size}"), frac);
    }
    println!();
    println!(
        "P(size < 1 MB)  = {:.3}   (paper: ~0.60)",
        corpus.cdf_at(ByteSize::from_mib(1))
    );
    println!(
        "P(size < 10 MB) = {:.3}   (paper: ~0.90)",
        corpus.cdf_at(ByteSize::from_mib(10))
    );
    println!("Median install size = {}", corpus.median_size());

    let census = corpus.preserve_egl_census();
    println!();
    println!("setPreserveEGLContextOnPause census:");
    println!(
        "  {census} of {} apps ({:.3}%)   (paper: {PAPER_PRESERVE_EGL_COUNT} of {PAPER_CORPUS_SIZE}, {:.3}%)",
        corpus.len(),
        census as f64 * 100.0 / corpus.len() as f64,
        PAPER_PRESERVE_EGL_COUNT as f64 * 100.0 / PAPER_CORPUS_SIZE as f64,
    );
    println!("  => the Flux approach is expected to work for the vast majority of apps.");
}
