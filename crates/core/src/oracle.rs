//! The lifecycle data-loss oracle and its failure taxonomy.
//!
//! The fleet machinery can sweep thousands of migrations, but a sweep is
//! only as good as its verdicts. This module is the one shared
//! implementation of the per-scenario checks the integration suite and
//! the ablation benches previously duplicated ad hoc:
//!
//! * **capture** — [`OracleSnapshot::capture`] records the app state the
//!   user was promised *before* anything races it: the logical data tree
//!   (persisted files plus writes still buffered in app memory) and the
//!   record-log length;
//! * **perturb** — a [`LifecycleSchedule`] injects the pause/stop/kill
//!   interleavings of Riganelli et al.'s data-loss benchmark, and a
//!   [`FaultPlan`](flux_simcore::FaultPlan) on the migration injects
//!   mid-stage faults;
//! * **verdict** — [`OracleSnapshot::verdict`] checks the terminal world
//!   against the snapshot (guest-vs-home data-tree byte-equality, replay
//!   coverage, rollback invariants) and classifies every violation into a
//!   [`FailureClass`], the taxonomy modeled on the benchmark's bug
//!   classes;
//! * **tally** — [`Taxonomy`] accumulates verdicts into the class counts
//!   the sweeps report instead of a pass/fail list.

use crate::engine::StageFailure;
use crate::errors::FluxError;
use crate::fleet::FleetOutcome;
use crate::migration::{MigrationReport, MigrationSpec, MigrationStage, StageInterrupt};
use crate::record::CallLog;
use crate::world::{DeviceId, FluxWorld};
use flux_appfw::{ActivityState, LifecycleEvent};
use flux_simcore::SimDuration;
use std::collections::BTreeMap;
use std::fmt;

/// The data-loss bug classes the oracle distinguishes, modeled on the
/// taxonomy of "A Benchmark of Data Loss Bugs for Android Apps"
/// (Riganelli et al.) projected onto migration:
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum FailureClass {
    /// State the user was promised is missing or different afterwards — a
    /// write raced by a lifecycle transition and dropped.
    LostWrite,
    /// Record-log replay did not cover the promised log exactly: entries
    /// vanished before replay or the log shrank across a rollback.
    StaleReplay,
    /// A rollback (or a completion) left residue behind: staged chunks on
    /// the guest, a guest-side app after rollback, a home-side app after
    /// completion, or a home app not restored to the foreground.
    RollbackResidue,
    /// Refused because the app preserves its EGL context on pause — the
    /// paper's one GL limitation (§3.4, the Subway Surfers case).
    EglContext,
    /// Refused for any other §3.1–3.4 incompatibility: multi-process,
    /// API level, common SD-card files, ContentProvider interactions,
    /// non-system Binder connections, unpaired devices.
    IncompatibleFeature,
}

impl FailureClass {
    /// All classes, in taxonomy-report order.
    pub const ALL: [FailureClass; 5] = [
        FailureClass::LostWrite,
        FailureClass::StaleReplay,
        FailureClass::RollbackResidue,
        FailureClass::EglContext,
        FailureClass::IncompatibleFeature,
    ];

    /// The stable report key.
    pub fn key(&self) -> &'static str {
        match self {
            FailureClass::LostWrite => "lost-write",
            FailureClass::StaleReplay => "stale-replay",
            FailureClass::RollbackResidue => "rollback-residue",
            FailureClass::EglContext => "egl-context",
            FailureClass::IncompatibleFeature => "incompatible-feature",
        }
    }
}

impl fmt::Display for FailureClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.key())
    }
}

/// Classifies a refusal into its taxonomy class; `None` for failures that
/// are not refusals (faults, rollback errors, internal errors).
pub fn classify_refusal(failure: &StageFailure) -> Option<FailureClass> {
    match failure {
        StageFailure::PreservedEglContext => Some(FailureClass::EglContext),
        StageFailure::MultiProcess { .. }
        | StageFailure::ApiLevelIncompatible { .. }
        | StageFailure::CommonSdCardFile { .. }
        | StageFailure::ContentProviderActive
        | StageFailure::NonSystemBinder { .. }
        | StageFailure::NotPaired
        | StageFailure::NoSuchApp(_) => Some(FailureClass::IncompatibleFeature),
        StageFailure::FaultAborted { .. }
        | StageFailure::Interrupted { .. }
        | StageFailure::RollbackFailed { .. }
        | StageFailure::Internal(_) => None,
    }
}

/// One classified oracle finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Misbehaviour {
    /// The taxonomy class.
    pub class: FailureClass,
    /// What exactly was observed.
    pub detail: String,
}

/// How the migration itself terminated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum ScenarioOutcome {
    /// The app runs on the guest.
    Completed,
    /// A fault exhausted the retry budget; the world rolled back.
    RolledBack,
    /// Preflight refused before any state was touched.
    Refused,
}

impl ScenarioOutcome {
    /// The stable report key.
    pub fn key(&self) -> &'static str {
        match self {
            ScenarioOutcome::Completed => "completed",
            ScenarioOutcome::RolledBack => "rolled_back",
            ScenarioOutcome::Refused => "refused",
        }
    }
}

/// The oracle's judgement of one scenario.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OracleVerdict {
    /// How the migration terminated.
    pub outcome: ScenarioOutcome,
    /// Every classified violation (empty for a clean scenario). A refusal
    /// records its class here even when the refusal itself was handled
    /// cleanly — the class *is* the taxonomy entry.
    pub failures: Vec<Misbehaviour>,
}

impl OracleVerdict {
    /// No misbehaviour of any class.
    pub fn is_clean(&self) -> bool {
        self.failures.is_empty()
    }

    /// Whether some failure of `class` was found.
    pub fn has(&self, class: FailureClass) -> bool {
        self.failures.iter().any(|m| m.class == class)
    }
}

/// The app state the user was promised, captured before a scenario's
/// lifecycle schedule and migration race it.
#[derive(Debug, Clone)]
pub struct OracleSnapshot {
    home: DeviceId,
    guest: DeviceId,
    package: String,
    home_name: String,
    /// The *logical* data tree: persisted files under `/data/data/<pkg>`
    /// plus writes still buffered in app memory (overlaid at the path a
    /// flush would give them).
    tree: BTreeMap<String, flux_fs::Content>,
    /// Record-log length at migration time (refreshable: a kill between
    /// capture and migrate legitimately resets the log).
    log_len: usize,
}

impl OracleSnapshot {
    /// Captures the promised state of `package` on `home` ahead of a
    /// migration to `guest`.
    pub fn capture(
        world: &FluxWorld,
        home: DeviceId,
        guest: DeviceId,
        package: &str,
    ) -> Result<Self, FluxError> {
        let dev = world.device(home)?;
        let root = format!("/data/data/{package}");
        let mut tree: BTreeMap<String, flux_fs::Content> = dev
            .fs
            .list(&root)
            .map(|(path, entry)| (path.to_string(), entry.content))
            .collect();
        let mut log_len = 0;
        if let Some(app) = dev.apps.get(package) {
            // Buffered writes are part of the promise: the app told the
            // user "saved" even though the bytes sit in memory.
            for w in &app.pending_writes {
                tree.insert(
                    format!("{root}/files/{}", w.name),
                    flux_fs::Content::new(w.size, w.hash),
                );
            }
            log_len = dev.records.log(app.uid).map_or(0, CallLog::len);
        }
        Ok(Self {
            home,
            guest,
            package: package.to_owned(),
            home_name: dev.name.clone(),
            tree,
            log_len,
        })
    }

    /// Re-reads the record-log length from the world. Call after applying
    /// a lifecycle schedule: a kill legitimately resets the log (the
    /// recorded calls died with the process), and replay coverage must be
    /// judged against the log as it stood when the migration started —
    /// while the data tree keeps judging against the original promise.
    pub fn refresh_log_len(&mut self, world: &FluxWorld) {
        if let Ok(dev) = world.device(self.home) {
            self.log_len = dev
                .apps
                .get(&self.package)
                .map(|app| dev.records.log(app.uid).map_or(0, CallLog::len))
                .unwrap_or(0);
        }
    }

    /// The migrating package.
    pub fn package(&self) -> &str {
        &self.package
    }

    /// Number of files in the promised data tree.
    pub fn file_count(&self) -> usize {
        self.tree.len()
    }

    /// The promised record-log length.
    pub fn log_len(&self) -> usize {
        self.log_len
    }

    /// Judges the terminal world against this snapshot. `outcome` is the
    /// migration's result — a report on success, the error otherwise.
    /// Read-only over the world, so a verdict can be re-taken (the
    /// seeded-bug tests tamper with the world between verdicts).
    pub fn verdict(
        &self,
        world: &FluxWorld,
        outcome: Result<&MigrationReport, &FluxError>,
    ) -> OracleVerdict {
        match outcome {
            Ok(report) => self.verdict_completed(world, report),
            Err(e) => match e.as_migration() {
                Some(failure) => match classify_refusal(failure) {
                    Some(class) => self.verdict_refused(world, failure, class),
                    None => self.verdict_rolled_back(world, failure),
                },
                // Non-migration errors (world/config) never start the
                // pipeline; judge them like refusals without a class.
                None => {
                    let mut v = OracleVerdict {
                        outcome: ScenarioOutcome::Refused,
                        failures: Vec::new(),
                    };
                    self.check_home_promise_intact(world, &mut v.failures);
                    v
                }
            },
        }
    }

    /// Judges a [`FleetOutcome`] — the fleet-path entry point.
    pub fn verdict_for(&self, world: &FluxWorld, outcome: &FleetOutcome) -> OracleVerdict {
        match outcome {
            FleetOutcome::Completed(report) => self.verdict(world, Ok(report)),
            FleetOutcome::RolledBack { error } | FleetOutcome::Refused { error } => {
                self.verdict(world, Err(error))
            }
        }
    }

    fn verdict_completed(&self, world: &FluxWorld, report: &MigrationReport) -> OracleVerdict {
        let mut failures = Vec::new();
        let (Ok(home_dev), Ok(guest_dev)) = (world.device(self.home), world.device(self.guest))
        else {
            return OracleVerdict {
                outcome: ScenarioOutcome::Completed,
                failures: vec![Misbehaviour {
                    class: FailureClass::RollbackResidue,
                    detail: "scenario devices vanished".into(),
                }],
            };
        };
        // Guest-vs-home data-tree byte-equality: every promised file must
        // sit in the guest's pairing mirror with identical content.
        let mirror_root = guest_dev
            .pairings
            .get(&self.home.0)
            .map(|p| p.root.clone())
            .unwrap_or_else(|| format!("/data/flux/{}", self.home_name));
        for (path, content) in &self.tree {
            let mirror_path = format!("{mirror_root}{path}");
            match guest_dev.fs.get(&mirror_path) {
                None => failures.push(Misbehaviour {
                    class: FailureClass::LostWrite,
                    detail: format!("{path} missing from the guest mirror"),
                }),
                Some(entry) if entry.content != *content => failures.push(Misbehaviour {
                    class: FailureClass::LostWrite,
                    detail: format!(
                        "{path} differs on the guest: {:?} vs promised {:?}",
                        entry.content, content
                    ),
                }),
                Some(_) => {}
            }
        }
        // Replay coverage: every promised log entry visited exactly once.
        // A kill the engine *delivered mid-migration* legitimately wiped
        // the record log after the promise was refreshed (the recorded
        // calls died with the process); the lost buffered writes still
        // surface above as LostWrite, so excusing the replay count here
        // does not mask the data loss.
        let killed_mid_stage = report
            .interrupts
            .iter()
            .any(|i| matches!(i.event, LifecycleEvent::Kill));
        let replay_total = report.replay.total() as usize;
        if replay_total != self.log_len && !killed_mid_stage {
            failures.push(Misbehaviour {
                class: FailureClass::StaleReplay,
                detail: format!(
                    "replay covered {replay_total} of {} promised log entries",
                    self.log_len
                ),
            });
        }
        // The app must actually have moved.
        if !guest_dev.apps.contains_key(&self.package) {
            failures.push(Misbehaviour {
                class: FailureClass::LostWrite,
                detail: "app never arrived on the guest".into(),
            });
        }
        if home_dev.apps.contains_key(&self.package) {
            failures.push(Misbehaviour {
                class: FailureClass::RollbackResidue,
                detail: "home still holds the app after completion".into(),
            });
        }
        OracleVerdict {
            outcome: ScenarioOutcome::Completed,
            failures,
        }
    }

    fn verdict_rolled_back(&self, world: &FluxWorld, failure: &StageFailure) -> OracleVerdict {
        let mut failures = Vec::new();
        if let StageFailure::RollbackFailed { reason } = failure {
            failures.push(Misbehaviour {
                class: FailureClass::RollbackResidue,
                detail: format!("rollback failed: {reason}"),
            });
        }
        // A mid-stage kill cold-restarted the home process: its record
        // log legitimately reset with it, so the rollback invariant on
        // the log length does not apply. Everything else (foregrounded,
        // alive, data tree, guest residue) is still checked in full.
        let killed_mid_stage = matches!(
            failure,
            StageFailure::Interrupted {
                event: LifecycleEvent::Kill,
                ..
            }
        );
        // Home side: the app is back in the foreground, alive, with its
        // promised data tree and its migration-time record log.
        if let Ok(home_dev) = world.device(self.home) {
            match home_dev.apps.get(&self.package) {
                None => failures.push(Misbehaviour {
                    class: FailureClass::RollbackResidue,
                    detail: "home app missing after rollback".into(),
                }),
                Some(app) => {
                    if app.top_state() != Some(ActivityState::Resumed) {
                        failures.push(Misbehaviour {
                            class: FailureClass::RollbackResidue,
                            detail: format!(
                                "home app not foregrounded after rollback: {:?}",
                                app.top_state()
                            ),
                        });
                    }
                    if home_dev.kernel.process(app.main_pid).is_err() {
                        failures.push(Misbehaviour {
                            class: FailureClass::RollbackResidue,
                            detail: "home process gone after rollback".into(),
                        });
                    }
                    let log_len = home_dev.records.log(app.uid).map_or(0, CallLog::len);
                    if log_len != self.log_len && !killed_mid_stage {
                        failures.push(Misbehaviour {
                            class: FailureClass::StaleReplay,
                            detail: format!(
                                "record log holds {log_len} entries after rollback, promised {}",
                                self.log_len
                            ),
                        });
                    }
                }
            }
            self.check_home_tree(home_dev, &mut failures);
        }
        // Guest side: residue-free.
        if let Ok(guest_dev) = world.device(self.guest) {
            if guest_dev.apps.contains_key(&self.package) {
                failures.push(Misbehaviour {
                    class: FailureClass::RollbackResidue,
                    detail: "guest still holds the app after rollback".into(),
                });
            }
            let root = guest_dev
                .pairings
                .get(&self.home.0)
                .map(|p| p.root.clone())
                .unwrap_or_else(|| format!("/data/flux/{}", self.home_name));
            for suffix in ["image", "precopy"] {
                let staged = format!("{root}/.migrate/{}.{suffix}", self.package);
                if guest_dev.fs.exists(&staged) {
                    failures.push(Misbehaviour {
                        class: FailureClass::RollbackResidue,
                        detail: format!("{staged} left behind on the guest"),
                    });
                }
            }
        }
        OracleVerdict {
            outcome: ScenarioOutcome::RolledBack,
            failures,
        }
    }

    fn verdict_refused(
        &self,
        world: &FluxWorld,
        failure: &StageFailure,
        class: FailureClass,
    ) -> OracleVerdict {
        // The refusal class is the taxonomy entry…
        let mut failures = vec![Misbehaviour {
            class,
            detail: failure.to_string(),
        }];
        // …and a refusal must be free: preflight runs before any state is
        // touched, so the promise must be fully intact on the home.
        self.check_home_promise_intact(world, &mut failures);
        OracleVerdict {
            outcome: ScenarioOutcome::Refused,
            failures,
        }
    }

    /// Checks the home data tree and record log still match the promise
    /// (used on paths where the engine claims it touched nothing).
    fn check_home_promise_intact(&self, world: &FluxWorld, failures: &mut Vec<Misbehaviour>) {
        let Ok(home_dev) = world.device(self.home) else {
            return;
        };
        self.check_home_tree(home_dev, failures);
        if let Some(app) = home_dev.apps.get(&self.package) {
            let log_len = home_dev.records.log(app.uid).map_or(0, CallLog::len);
            if log_len != self.log_len {
                failures.push(Misbehaviour {
                    class: FailureClass::StaleReplay,
                    detail: format!(
                        "record log holds {log_len} entries after refusal, promised {}",
                        self.log_len
                    ),
                });
            }
        }
    }

    /// Compares the home's *logical* data tree (disk plus any writes
    /// still buffered in app memory) against the snapshot.
    fn check_home_tree(&self, home_dev: &crate::world::Device, failures: &mut Vec<Misbehaviour>) {
        let root = format!("/data/data/{}", self.package);
        let mut now: BTreeMap<String, flux_fs::Content> = home_dev
            .fs
            .list(&root)
            .map(|(path, entry)| (path.to_string(), entry.content))
            .collect();
        if let Some(app) = home_dev.apps.get(&self.package) {
            for w in &app.pending_writes {
                now.insert(
                    format!("{root}/files/{}", w.name),
                    flux_fs::Content::new(w.size, w.hash),
                );
            }
        }
        for (path, content) in &self.tree {
            match now.get(path) {
                None => failures.push(Misbehaviour {
                    class: FailureClass::LostWrite,
                    detail: format!("{path} lost from the home data tree"),
                }),
                Some(c) if c != content => failures.push(Misbehaviour {
                    class: FailureClass::LostWrite,
                    detail: format!("{path} changed on the home: {c:?} vs promised {content:?}"),
                }),
                Some(_) => {}
            }
        }
    }
}

/// The lifecycle interleavings a scenario schedule injects between
/// capture and migration — or, for [`At`](Self::At), *inside* it — the
/// axis the corpus sweep ablates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum LifecycleSchedule {
    /// Migrate the foregrounded app as-is.
    Undisturbed,
    /// `onPause` first (saves), then migrate the paused app.
    PauseThenMigrate,
    /// `onStop` first (saves), then migrate the stopped app.
    StopThenMigrate,
    /// Kill without callbacks (loses buffered writes and the record log),
    /// cold-restart, then migrate the restarted app.
    KillThenMigrate,
    /// Deliver `event` mid-migration, `offset` into the first entry of
    /// the anchor `stage` — the engine lands it on the next slice
    /// boundary. This is the schedule that reaches the Riganelli windows
    /// *inside* a running migration (kill mid-freeze, kill mid-transfer).
    At {
        /// The report stage the interrupt is anchored to.
        stage: MigrationStage,
        /// Offset past the stage's first entry.
        offset: SimDuration,
        /// The lifecycle event to deliver.
        event: LifecycleEvent,
    },
}

impl LifecycleSchedule {
    /// The pre-migration schedules, in sweep order. (`At` schedules are
    /// parameterised and enumerated by the sweeps that ablate them.)
    pub const ALL: [LifecycleSchedule; 4] = [
        LifecycleSchedule::Undisturbed,
        LifecycleSchedule::PauseThenMigrate,
        LifecycleSchedule::StopThenMigrate,
        LifecycleSchedule::KillThenMigrate,
    ];

    /// The stable report key. `At` schedules key as
    /// `mid-<stage>-<event>` (offset deliberately excluded: sweep cells
    /// ablate *where* the event lands, not the exact nanosecond).
    pub fn key(&self) -> String {
        match self {
            LifecycleSchedule::Undisturbed => "undisturbed".into(),
            LifecycleSchedule::PauseThenMigrate => "pause".into(),
            LifecycleSchedule::StopThenMigrate => "stop".into(),
            LifecycleSchedule::KillThenMigrate => "kill".into(),
            LifecycleSchedule::At { stage, event, .. } => {
                let event = match event {
                    LifecycleEvent::Pause => "pause",
                    LifecycleEvent::Stop => "stop",
                    LifecycleEvent::Kill => "kill",
                };
                format!("mid-{}-{event}", stage.name())
            }
        }
    }

    /// Applies the schedule's pre-migration lifecycle transition, if any
    /// ([`At`](Self::At) schedules act inside the migration instead — see
    /// [`interrupts`](Self::interrupts)).
    pub fn apply(
        &self,
        world: &mut FluxWorld,
        home: DeviceId,
        package: &str,
    ) -> Result<(), FluxError> {
        match self {
            LifecycleSchedule::Undisturbed | LifecycleSchedule::At { .. } => Ok(()),
            LifecycleSchedule::PauseThenMigrate => {
                world.lifecycle_event(home, package, LifecycleEvent::Pause)
            }
            LifecycleSchedule::StopThenMigrate => {
                world.lifecycle_event(home, package, LifecycleEvent::Stop)
            }
            LifecycleSchedule::KillThenMigrate => {
                world.lifecycle_event(home, package, LifecycleEvent::Kill)
            }
        }
    }

    /// The stage-anchored interrupts this schedule injects into the
    /// migration itself (empty for the pre-migration schedules).
    pub fn interrupts(&self) -> Vec<StageInterrupt> {
        match *self {
            LifecycleSchedule::At {
                stage,
                offset,
                event,
            } => vec![StageInterrupt::at(stage, offset, event)],
            _ => Vec::new(),
        }
    }
}

/// Runs one full scenario — capture, schedule, migrate, verdict — and
/// returns the oracle's judgement. The spec must carry a route.
pub fn run_scenario(
    world: &mut FluxWorld,
    schedule: LifecycleSchedule,
    mut spec: MigrationSpec,
) -> Result<OracleVerdict, FluxError> {
    let (home, guest) = spec.route.ok_or_else(|| {
        FluxError::Config("scenario spec has no route: set MigrationSpec::between".into())
    })?;
    let mut snap = OracleSnapshot::capture(world, home, guest, &spec.package)?;
    schedule.apply(world, home, &spec.package)?;
    snap.refresh_log_len(world);
    spec.interrupts.extend(schedule.interrupts());
    let result = crate::engine::migrate(world, spec);
    Ok(snap.verdict(world, result.as_ref()))
}

/// Failure-class counts plus outcome totals — what a sweep reports
/// instead of a pass/fail list. All five class keys are always present
/// (zero-filled), so serialized taxonomies compare byte-for-byte across
/// cells and passes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Taxonomy {
    /// Scenarios whose migration completed.
    pub completed: u64,
    /// Scenarios whose migration rolled back.
    pub rolled_back: u64,
    /// Scenarios whose migration was refused.
    pub refused: u64,
    /// Scenarios with no misbehaviour of any class.
    pub clean: u64,
    counts: BTreeMap<&'static str, u64>,
}

impl Default for Taxonomy {
    fn default() -> Self {
        let counts = FailureClass::ALL.iter().map(|c| (c.key(), 0)).collect();
        Self {
            completed: 0,
            rolled_back: 0,
            refused: 0,
            clean: 0,
            counts,
        }
    }
}

impl Taxonomy {
    /// Tallies one verdict. A scenario counts at most once per class,
    /// however many files it lost.
    pub fn record(&mut self, verdict: &OracleVerdict) {
        match verdict.outcome {
            ScenarioOutcome::Completed => self.completed += 1,
            ScenarioOutcome::RolledBack => self.rolled_back += 1,
            ScenarioOutcome::Refused => self.refused += 1,
        }
        if verdict.is_clean() {
            self.clean += 1;
        }
        for class in FailureClass::ALL {
            if verdict.has(class) {
                *self.counts.entry(class.key()).or_insert(0) += 1;
            }
        }
    }

    /// Scenarios that hit `class`.
    pub fn count(&self, class: FailureClass) -> u64 {
        self.counts.get(class.key()).copied().unwrap_or(0)
    }

    /// Number of distinct classes with a non-zero count.
    pub fn populated_classes(&self) -> usize {
        self.counts.values().filter(|&&n| n > 0).count()
    }

    /// Total scenarios tallied.
    pub fn total(&self) -> u64 {
        self.completed + self.rolled_back + self.refused
    }

    /// Adds another taxonomy's tallies into this one.
    pub fn merge(&mut self, other: &Taxonomy) {
        self.completed += other.completed;
        self.rolled_back += other.rolled_back;
        self.refused += other.refused;
        self.clean += other.clean;
        for (k, v) in &other.counts {
            *self.counts.entry(k).or_insert(0) += v;
        }
    }
}

struct ClassCounts<'a>(&'a BTreeMap<&'static str, u64>);

impl serde::Serialize for ClassCounts<'_> {
    fn serialize(&self, out: &mut String) {
        let mut obj = serde::object(out);
        for (k, v) in self.0 {
            obj.field(k, v);
        }
        obj.end();
    }
}

impl serde::Serialize for Taxonomy {
    fn serialize(&self, out: &mut String) {
        let mut obj = serde::object(out);
        obj.field("total", &self.total())
            .field("completed", &self.completed)
            .field("rolled_back", &self.rolled_back)
            .field("refused", &self.refused)
            .field("clean", &self.clean)
            .field("classes", &ClassCounts(&self.counts));
        obj.end();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn refusals_classify_into_the_two_refusal_classes() {
        assert_eq!(
            classify_refusal(&StageFailure::PreservedEglContext),
            Some(FailureClass::EglContext)
        );
        assert_eq!(
            classify_refusal(&StageFailure::MultiProcess { processes: 2 }),
            Some(FailureClass::IncompatibleFeature)
        );
        assert_eq!(
            classify_refusal(&StageFailure::ApiLevelIncompatible {
                required: 21,
                guest: 19
            }),
            Some(FailureClass::IncompatibleFeature)
        );
        assert_eq!(
            classify_refusal(&StageFailure::FaultAborted {
                stage: crate::migration::MigrationStage::Transfer,
                attempts: 3,
                detail: "drop".into()
            }),
            None
        );
    }

    #[test]
    fn taxonomy_counts_once_per_class_per_scenario() {
        let mut t = Taxonomy::default();
        t.record(&OracleVerdict {
            outcome: ScenarioOutcome::Completed,
            failures: vec![
                Misbehaviour {
                    class: FailureClass::LostWrite,
                    detail: "a".into(),
                },
                Misbehaviour {
                    class: FailureClass::LostWrite,
                    detail: "b".into(),
                },
            ],
        });
        t.record(&OracleVerdict {
            outcome: ScenarioOutcome::Refused,
            failures: vec![Misbehaviour {
                class: FailureClass::EglContext,
                detail: "egl".into(),
            }],
        });
        assert_eq!(t.count(FailureClass::LostWrite), 1);
        assert_eq!(t.count(FailureClass::EglContext), 1);
        assert_eq!(t.total(), 2);
        assert_eq!(t.clean, 0);
        assert_eq!(t.populated_classes(), 2);
    }

    #[test]
    fn taxonomy_serializes_all_classes_zero_filled() {
        let json = serde::to_json(&Taxonomy::default());
        for class in FailureClass::ALL {
            assert!(json.contains(class.key()), "{json}");
        }
        let merged_json = {
            let mut a = Taxonomy::default();
            a.merge(&Taxonomy::default());
            serde::to_json(&a)
        };
        assert_eq!(json, merged_json);
    }
}
