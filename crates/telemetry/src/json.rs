//! A minimal JSON reader/printer.
//!
//! The exporters in this crate emit JSON by hand (the workspace's vendored
//! `serde` is a no-op stub), so this module provides the other half: a
//! small recursive-descent parser and a printer that round-trip exporter
//! output for validation in tests and in `flux-prof`'s self-check.
//!
//! Numbers are kept as their source text ([`JsonValue::Num`] holds the
//! lexeme), so `parse` → `to_string` reproduces the input byte-for-byte for
//! any document this crate's exporters produce — which is what the
//! byte-stability tests rely on.

use std::fmt;

/// A parsed JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, stored as its source lexeme to round-trip exactly.
    Num(String),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object; insertion order is preserved.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Looks up a key in an object.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The elements if this is an array.
    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The string contents if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The number parsed as `f64`, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(s) => s.parse().ok(),
            _ => None,
        }
    }
}

/// A JSON syntax error with a byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the error.
    pub at: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Parses a JSON document. Trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<JsonValue, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing data"));
    }
    Ok(v)
}

/// Escapes `s` for embedding inside a JSON string literal (no quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

impl fmt::Display for JsonValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JsonValue::Null => write!(f, "null"),
            JsonValue::Bool(b) => write!(f, "{b}"),
            JsonValue::Num(n) => write!(f, "{n}"),
            JsonValue::Str(s) => write!(f, "\"{}\"", escape(s)),
            JsonValue::Arr(items) => {
                write!(f, "[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "]")
            }
            JsonValue::Obj(pairs) => {
                write!(f, "{{")?;
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "\"{}\":{v}", escape(k))?;
                }
                write!(f, "}}")
            }
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            at: self.pos,
            message: message.to_owned(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, v: JsonValue) -> Result<JsonValue, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn value(&mut self) -> Result<JsonValue, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let lexeme = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii digits");
        if lexeme.parse::<f64>().is_err() {
            return Err(self.err("malformed number"));
        }
        Ok(JsonValue::Num(lexeme.to_owned()))
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            out.push(
                                char::from_u32(code).ok_or_else(|| self.err("bad code point"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[start..])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), JsonValue::Null);
        assert_eq!(parse("true").unwrap(), JsonValue::Bool(true));
        assert_eq!(parse("-1.5e3").unwrap(), JsonValue::Num("-1.5e3".into()));
        assert_eq!(parse("\"a\\nb\"").unwrap(), JsonValue::Str("a\nb".into()));
    }

    #[test]
    fn compact_documents_round_trip_byte_identically() {
        let src = r#"{"a":[1,2.5,"x\"y"],"b":{"c":null,"d":true},"e":-7}"#;
        let v = parse(src).unwrap();
        assert_eq!(v.to_string(), src);
        assert_eq!(parse(&v.to_string()).unwrap(), v);
    }

    #[test]
    fn object_order_is_preserved() {
        let v = parse(r#"{"z":1,"a":2}"#).unwrap();
        assert_eq!(v.to_string(), r#"{"z":1,"a":2}"#);
        assert_eq!(v.get("z"), Some(&JsonValue::Num("1".into())));
    }

    #[test]
    fn control_characters_escape_as_unicode() {
        let v = JsonValue::Str("a\u{1}b".into());
        assert_eq!(v.to_string(), "\"a\\u0001b\"");
        assert_eq!(parse(&v.to_string()).unwrap(), v);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("12 34").is_err());
        assert!(parse("\"open").is_err());
    }
}
