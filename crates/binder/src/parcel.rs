//! Parcels: the typed payload container of Binder transactions.
//!
//! Android marshals RPC arguments into `Parcel` objects. The Flux record log
//! stores whole parcels, and the `@if` decorator compares individual parcel
//! values across calls, so values here are cheap to clone and compare.
//! Parcels also encode to a compact wire form; the byte length feeds the
//! transaction-cost and checkpoint-size models, and the codec is exercised
//! by round-trip property tests.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A reference to a Binder object written into a parcel.
///
/// When a parcel crosses processes the driver translates these: a node the
/// sender *owns* arrives at the receiver as a fresh handle; a handle the
/// sender *holds* arrives as a handle to the same underlying node. This is
/// how Binder references propagate (see §2 of the paper: "Communication to
/// another Binder node cannot occur without first being given a reference to
/// it").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ObjRef {
    /// A node owned by the sending process, identified by its node id.
    Own(u64),
    /// A handle held by the sending process.
    Handle(u32),
}

/// One typed value inside a [`Parcel`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Value {
    /// A 32-bit integer.
    I32(i32),
    /// A 64-bit integer (times, durations, cookies).
    I64(i64),
    /// A double-precision float.
    F64(f64),
    /// A boolean.
    Bool(bool),
    /// A UTF-8 string.
    Str(String),
    /// An opaque byte blob (bitmaps, serialized Intents, …).
    Blob(Vec<u8>),
    /// A Binder object reference; translated by the driver in flight.
    Object(ObjRef),
    /// A file descriptor, dup'd into the receiver on delivery.
    Fd(i32),
    /// An explicit null (absent optional argument).
    Null,
}

impl Value {
    /// A short type tag, used in error messages and traces.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::I32(_) => "i32",
            Value::I64(_) => "i64",
            Value::F64(_) => "f64",
            Value::Bool(_) => "bool",
            Value::Str(_) => "str",
            Value::Blob(_) => "blob",
            Value::Object(_) => "object",
            Value::Fd(_) => "fd",
            Value::Null => "null",
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::I32(v) => write!(f, "{v}"),
            Value::I64(v) => write!(f, "{v}L"),
            Value::F64(v) => write!(f, "{v}"),
            Value::Bool(v) => write!(f, "{v}"),
            Value::Str(s) => write!(f, "{s:?}"),
            Value::Blob(b) => write!(f, "blob[{}]", b.len()),
            Value::Object(ObjRef::Own(n)) => write!(f, "node#{n}"),
            Value::Object(ObjRef::Handle(h)) => write!(f, "handle#{h}"),
            Value::Fd(fd) => write!(f, "fd:{fd}"),
            Value::Null => write!(f, "null"),
        }
    }
}

/// Errors raised while reading or decoding a parcel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParcelError {
    /// A read past the end of the parcel.
    OutOfBounds {
        /// Index that was requested.
        index: usize,
        /// Number of values actually present.
        len: usize,
    },
    /// A value of the wrong type at the given position.
    TypeMismatch {
        /// Index that was read.
        index: usize,
        /// Type the caller expected.
        expected: &'static str,
        /// Type actually present.
        found: &'static str,
    },
    /// The wire bytes could not be decoded.
    Malformed(String),
}

impl fmt::Display for ParcelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParcelError::OutOfBounds { index, len } => {
                write!(f, "parcel read at {index} beyond length {len}")
            }
            ParcelError::TypeMismatch {
                index,
                expected,
                found,
            } => write!(
                f,
                "parcel value {index}: expected {expected}, found {found}"
            ),
            ParcelError::Malformed(m) => write!(f, "malformed parcel bytes: {m}"),
        }
    }
}

impl std::error::Error for ParcelError {}

/// An ordered sequence of typed [`Value`]s.
///
/// # Examples
///
/// ```
/// use flux_binder::Parcel;
///
/// let p = Parcel::new().with_i32(7).with_str("alarm");
/// assert_eq!(p.i32(0).unwrap(), 7);
/// assert_eq!(p.str(1).unwrap(), "alarm");
/// let bytes = p.encode();
/// assert_eq!(Parcel::decode(&bytes).unwrap(), p);
/// ```
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Parcel {
    values: Vec<Value>,
}

impl Parcel {
    /// Creates an empty parcel.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a parcel from a list of values.
    pub fn from_values(values: Vec<Value>) -> Self {
        Self { values }
    }

    /// Appends a value.
    pub fn push(&mut self, v: Value) {
        self.values.push(v);
    }

    /// Builder-style append of an `i32`.
    pub fn with_i32(mut self, v: i32) -> Self {
        self.push(Value::I32(v));
        self
    }

    /// Builder-style append of an `i64`.
    pub fn with_i64(mut self, v: i64) -> Self {
        self.push(Value::I64(v));
        self
    }

    /// Builder-style append of an `f64`.
    pub fn with_f64(mut self, v: f64) -> Self {
        self.push(Value::F64(v));
        self
    }

    /// Builder-style append of a `bool`.
    pub fn with_bool(mut self, v: bool) -> Self {
        self.push(Value::Bool(v));
        self
    }

    /// Builder-style append of a string.
    pub fn with_str(mut self, v: impl Into<String>) -> Self {
        self.push(Value::Str(v.into()));
        self
    }

    /// Builder-style append of a blob.
    pub fn with_blob(mut self, v: Vec<u8>) -> Self {
        self.push(Value::Blob(v));
        self
    }

    /// Builder-style append of a Binder object reference.
    pub fn with_object(mut self, v: ObjRef) -> Self {
        self.push(Value::Object(v));
        self
    }

    /// Builder-style append of a file descriptor.
    pub fn with_fd(mut self, fd: i32) -> Self {
        self.push(Value::Fd(fd));
        self
    }

    /// Builder-style append of a null.
    pub fn with_null(mut self) -> Self {
        self.push(Value::Null);
        self
    }

    /// Number of values.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the parcel holds no values.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// All values, in order.
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Mutable access to the values (used by the driver to translate
    /// object references in flight).
    pub fn values_mut(&mut self) -> &mut [Value] {
        &mut self.values
    }

    /// The value at `index`.
    pub fn get(&self, index: usize) -> Result<&Value, ParcelError> {
        self.values.get(index).ok_or(ParcelError::OutOfBounds {
            index,
            len: self.values.len(),
        })
    }

    fn typed<'a, T>(
        &'a self,
        index: usize,
        expected: &'static str,
        extract: impl FnOnce(&'a Value) -> Option<T>,
    ) -> Result<T, ParcelError> {
        let v = self.get(index)?;
        extract(v).ok_or(ParcelError::TypeMismatch {
            index,
            expected,
            found: v.kind(),
        })
    }

    /// Reads an `i32` at `index`.
    pub fn i32(&self, index: usize) -> Result<i32, ParcelError> {
        self.typed(index, "i32", |v| match v {
            Value::I32(x) => Some(*x),
            _ => None,
        })
    }

    /// Reads an `i64` at `index`.
    pub fn i64(&self, index: usize) -> Result<i64, ParcelError> {
        self.typed(index, "i64", |v| match v {
            Value::I64(x) => Some(*x),
            _ => None,
        })
    }

    /// Reads an `f64` at `index`.
    pub fn f64(&self, index: usize) -> Result<f64, ParcelError> {
        self.typed(index, "f64", |v| match v {
            Value::F64(x) => Some(*x),
            _ => None,
        })
    }

    /// Reads a `bool` at `index`.
    pub fn bool(&self, index: usize) -> Result<bool, ParcelError> {
        self.typed(index, "bool", |v| match v {
            Value::Bool(x) => Some(*x),
            _ => None,
        })
    }

    /// Reads a string at `index`.
    pub fn str(&self, index: usize) -> Result<&str, ParcelError> {
        self.typed(index, "str", |v| match v {
            Value::Str(s) => Some(s.as_str()),
            _ => None,
        })
    }

    /// Reads a blob at `index`.
    pub fn blob(&self, index: usize) -> Result<&[u8], ParcelError> {
        self.typed(index, "blob", |v| match v {
            Value::Blob(b) => Some(b.as_slice()),
            _ => None,
        })
    }

    /// Reads a Binder object reference at `index`.
    pub fn object(&self, index: usize) -> Result<ObjRef, ParcelError> {
        self.typed(index, "object", |v| match v {
            Value::Object(o) => Some(*o),
            _ => None,
        })
    }

    /// Reads a file descriptor at `index`.
    pub fn fd(&self, index: usize) -> Result<i32, ParcelError> {
        self.typed(index, "fd", |v| match v {
            Value::Fd(fd) => Some(*fd),
            _ => None,
        })
    }

    /// The encoded wire size in bytes, without materialising the encoding.
    pub fn wire_size(&self) -> usize {
        self.values
            .iter()
            .map(|v| {
                1 + match v {
                    Value::I32(_) => 4,
                    Value::I64(_) => 8,
                    Value::F64(_) => 8,
                    Value::Bool(_) => 1,
                    Value::Str(s) => 4 + s.len(),
                    Value::Blob(b) => 4 + b.len(),
                    Value::Object(_) => 9,
                    Value::Fd(_) => 4,
                    Value::Null => 0,
                }
            })
            .sum::<usize>()
            + 4
    }

    /// Encodes the parcel to its wire form.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.wire_size());
        out.extend_from_slice(&(self.values.len() as u32).to_le_bytes());
        for v in &self.values {
            match v {
                Value::I32(x) => {
                    out.push(1);
                    out.extend_from_slice(&x.to_le_bytes());
                }
                Value::I64(x) => {
                    out.push(2);
                    out.extend_from_slice(&x.to_le_bytes());
                }
                Value::F64(x) => {
                    out.push(3);
                    out.extend_from_slice(&x.to_le_bytes());
                }
                Value::Bool(x) => {
                    out.push(4);
                    out.push(u8::from(*x));
                }
                Value::Str(s) => {
                    out.push(5);
                    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
                    out.extend_from_slice(s.as_bytes());
                }
                Value::Blob(b) => {
                    out.push(6);
                    out.extend_from_slice(&(b.len() as u32).to_le_bytes());
                    out.extend_from_slice(b);
                }
                Value::Object(ObjRef::Own(n)) => {
                    out.push(7);
                    out.push(0);
                    out.extend_from_slice(&n.to_le_bytes());
                }
                Value::Object(ObjRef::Handle(h)) => {
                    out.push(7);
                    out.push(1);
                    out.extend_from_slice(&u64::from(*h).to_le_bytes());
                }
                Value::Fd(fd) => {
                    out.push(8);
                    out.extend_from_slice(&fd.to_le_bytes());
                }
                Value::Null => out.push(9),
            }
        }
        out
    }

    /// Decodes a parcel from its wire form.
    pub fn decode(bytes: &[u8]) -> Result<Self, ParcelError> {
        let mut cur = Cursor { bytes, pos: 0 };
        let count = cur.u32()? as usize;
        let mut values = Vec::with_capacity(count.min(4096));
        for _ in 0..count {
            let tag = cur.u8()?;
            let v = match tag {
                1 => Value::I32(i32::from_le_bytes(cur.array()?)),
                2 => Value::I64(i64::from_le_bytes(cur.array()?)),
                3 => Value::F64(f64::from_le_bytes(cur.array()?)),
                4 => Value::Bool(cur.u8()? != 0),
                5 => {
                    let len = cur.u32()? as usize;
                    let raw = cur.take(len)?;
                    Value::Str(
                        String::from_utf8(raw.to_vec())
                            .map_err(|e| ParcelError::Malformed(e.to_string()))?,
                    )
                }
                6 => {
                    let len = cur.u32()? as usize;
                    Value::Blob(cur.take(len)?.to_vec())
                }
                7 => {
                    let form = cur.u8()?;
                    let raw = u64::from_le_bytes(cur.array()?);
                    match form {
                        0 => Value::Object(ObjRef::Own(raw)),
                        1 => Value::Object(ObjRef::Handle(raw as u32)),
                        other => {
                            return Err(ParcelError::Malformed(format!("bad object form {other}")))
                        }
                    }
                }
                8 => Value::Fd(i32::from_le_bytes(cur.array()?)),
                9 => Value::Null,
                other => return Err(ParcelError::Malformed(format!("bad tag {other}"))),
            };
            values.push(v);
        }
        Ok(Parcel { values })
    }
}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], ParcelError> {
        if self.pos + n > self.bytes.len() {
            return Err(ParcelError::Malformed(format!(
                "truncated at {} (+{n} of {})",
                self.pos,
                self.bytes.len()
            )));
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, ParcelError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, ParcelError> {
        Ok(u32::from_le_bytes(self.array()?))
    }

    fn array<const N: usize>(&mut self) -> Result<[u8; N], ParcelError> {
        let s = self.take(N)?;
        let mut a = [0u8; N];
        a.copy_from_slice(s);
        Ok(a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Parcel {
        Parcel::new()
            .with_i32(-5)
            .with_i64(1 << 40)
            .with_f64(2.5)
            .with_bool(true)
            .with_str("notification")
            .with_blob(vec![1, 2, 3])
            .with_object(ObjRef::Handle(7))
            .with_object(ObjRef::Own(99))
            .with_fd(12)
            .with_null()
    }

    #[test]
    fn encode_decode_roundtrip() {
        let p = sample();
        assert_eq!(Parcel::decode(&p.encode()).unwrap(), p);
    }

    #[test]
    fn wire_size_matches_encoding() {
        let p = sample();
        assert_eq!(p.wire_size(), p.encode().len());
        assert_eq!(Parcel::new().wire_size(), Parcel::new().encode().len());
    }

    #[test]
    fn typed_reads_check_types() {
        let p = Parcel::new().with_i32(1).with_str("x");
        assert_eq!(p.i32(0).unwrap(), 1);
        assert!(matches!(
            p.i32(1),
            Err(ParcelError::TypeMismatch {
                expected: "i32",
                ..
            })
        ));
        assert!(matches!(p.str(5), Err(ParcelError::OutOfBounds { .. })));
    }

    #[test]
    fn decode_rejects_truncated_input() {
        let mut bytes = sample().encode();
        bytes.truncate(bytes.len() - 2);
        assert!(Parcel::decode(&bytes).is_err());
    }

    #[test]
    fn decode_rejects_bad_tag() {
        let mut bytes = Parcel::new().with_i32(1).encode();
        bytes[4] = 200;
        assert!(matches!(
            Parcel::decode(&bytes),
            Err(ParcelError::Malformed(_))
        ));
    }

    #[test]
    fn decode_rejects_invalid_utf8() {
        // Tag 5 (str), length 1, byte 0xFF.
        let mut bytes = vec![];
        bytes.extend_from_slice(&1u32.to_le_bytes());
        bytes.push(5);
        bytes.extend_from_slice(&1u32.to_le_bytes());
        bytes.push(0xFF);
        assert!(Parcel::decode(&bytes).is_err());
    }
}
