//! Design-choice ablations called out in DESIGN.md.
//!
//! 1. **Selective vs record-everything** — §3.2's motivation: a naive
//!    recorder wastes log space and replay time. We run the WhatsApp-style
//!    notification/alarm churn with and without drop rules.
//! 2. **Trim-memory preparation** — §3.3: without discarding device state
//!    before checkpoint, the image would carry GPU/pmem state (and in real
//!    Flux, would be unrestorable). We measure the image-size difference.
//! 3. **`--link-dest` and compression in pairing** — §4's pairing numbers
//!    depend on both; we re-run the sync with each disabled.

use flux_binder::Parcel;
use flux_core::{DeviceId, WorldBuilder};
use flux_device::DeviceProfile;
use flux_fs::{sync, SimFs, SyncOptions};
use flux_simcore::{CostModel, SimTime};
use flux_workloads::spec;

fn main() {
    ablation_selective_record();
    ablation_trim_memory();
    ablation_link_dest();
}

/// Churned calls: N rounds of post + cancel notification and set + re-set
/// alarm. Selective record keeps O(1) entries; naive keeps O(N).
fn ablation_selective_record() {
    println!("Ablation 1: Selective Record vs record-everything\n");
    let rounds = 500u64;

    let app = spec("WhatsApp").unwrap();
    let (mut world, ids) = WorldBuilder::new()
        .seed(5)
        .device("home", DeviceProfile::nexus7_2013())
        .app(0, app.clone())
        .build()
        .expect("world builds");
    let dev = ids[0];
    let pkg = &app.package;
    for i in 0..rounds {
        world
            .app_call(
                dev,
                pkg,
                "notification",
                "enqueueNotification",
                Parcel::new()
                    .with_str(pkg.clone())
                    .with_i32(1)
                    .with_blob(vec![0; 512])
                    .with_null(),
            )
            .unwrap();
        world
            .app_call(
                dev,
                pkg,
                "alarm",
                "set",
                Parcel::new()
                    .with_i32(0)
                    .with_i64(1_000_000 + i as i64)
                    .with_str("retry"),
            )
            .unwrap();
    }
    let uid = world.device(dev).unwrap().app_uid(pkg).unwrap();
    let log = world.device(dev).unwrap().records.log(uid).unwrap();
    let selective_entries = log.len() as u64;
    let selective_bytes = log.wire_bytes();
    let naive_entries = log.calls_seen;
    // A naive recorder stores every offered call at roughly the same
    // per-entry size.
    let naive_bytes = selective_bytes * naive_entries / selective_entries.max(1);

    println!("  calls made                : {naive_entries}");
    println!(
        "  naive log entries         : {naive_entries} (~{} KB)",
        naive_bytes / 1024
    );
    println!(
        "  selective log entries     : {selective_entries} (~{} KB)",
        selective_bytes / 1024
    );
    println!(
        "  replay-call reduction     : {:.1}x fewer calls to replay\n",
        naive_entries as f64 / selective_entries as f64
    );
}

/// Checkpoint image size with and without the trim-memory preparation.
fn ablation_trim_memory() {
    println!("Ablation 2: trim-memory preparation before checkpoint\n");
    let app = spec("Candy Crush Saga").unwrap();

    // With preparation: the normal pipeline (preflight passes; measure the
    // image the migration actually shipped).
    let with_prep = flux_bench::evaluation::run_one(
        7,
        flux_device::DeviceModel::Nexus7_2013,
        flux_device::DeviceModel::Nexus7_2013,
        &app,
    )
    .expect("candy crush migrates");

    // Without preparation: measure what the address space holds while the
    // GPU state is still live.
    let (world, ids) = WorldBuilder::new()
        .seed(7)
        .device("home", DeviceProfile::nexus7_2013())
        .app(0, app.clone())
        .build()
        .expect("world builds");
    let dev: DeviceId = ids[0];
    let d = world.device(dev).unwrap();
    let a = d.apps.get(&app.package).unwrap();
    let proc = d.kernel.process(a.main_pid).unwrap();
    let mapped_with_gpu = proc.mem.mapped_bytes();
    let dumpable = proc.mem.dump_bytes();
    let gpu_extra = a.gl.gpu_bytes();

    println!(
        "  image shipped with preparation   : {}",
        with_prep.ledger.image_raw
    );
    println!(
        "  dirty pages without preparation  : {} (+ {} un-checkpointable GPU/pmem state)",
        dumpable, gpu_extra
    );
    println!("  total mapped while in foreground : {mapped_with_gpu}");
    println!("  => without the trim cascade the checkpoint is refused entirely;");
    println!("     CRIA's discard-then-checkpoint design is what makes the image portable.\n");
}

/// Pairing sync with hard links / compression toggled.
fn ablation_link_dest() {
    println!("Ablation 3: pairing with and without --link-dest / compression\n");
    let home_profile = DeviceProfile::nexus7_2012();
    let guest_profile = DeviceProfile::nexus7_2013();
    let mut home = SimFs::new();
    flux_device::populate_system(&mut home, &home_profile);

    let cost = CostModel::reference();
    let variants: [(&str, SyncOptions); 3] = [
        (
            "link-dest + delta + compression",
            SyncOptions {
                link_dest: Some("/system".into()),
                ..SyncOptions::default()
            },
        ),
        (
            "no link-dest",
            SyncOptions {
                link_dest: None,
                ..SyncOptions::default()
            },
        ),
        (
            "link-dest, no compression/delta",
            SyncOptions {
                link_dest: Some("/system".into()),
                delta_ratio: 1.0,
                compress_ratio: 1.0,
            },
        ),
    ];
    for (label, opts) in variants {
        let mut guest = SimFs::new();
        flux_device::populate_system(&mut guest, &guest_profile);
        let r = sync(
            &home,
            "/system",
            &mut guest,
            "/data/flux/home/system",
            &opts,
            &cost,
        )
        .expect("sync runs");
        println!(
            "  {label:<34} shipped {:>9}  (differing {:>9}, linked {} files)",
            format!("{}", r.bytes_shipped),
            format!("{}", r.bytes_differing),
            r.files_hard_linked
        );
    }
    let _ = SimTime::ZERO;
    println!();
}
