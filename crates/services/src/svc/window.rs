//! The WindowManagerService.
//!
//! Not part of Table 2 (its state is re-created rather than replayed), but
//! central to CRIA's preparation stage: it owns Windows and Surfaces, and
//! its `startTrimMemory`/`endTrimMemory` RPCs anchor the trim-memory
//! cascade that releases hardware rendering resources (§3.3).

use crate::service::{ServiceCtx, SystemService};
use flux_binder::{BinderError, Parcel};
use flux_simcore::Uid;
use std::any::Any;
use std::collections::BTreeMap;

/// One window with its backing surface.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WindowRecord {
    /// Owning app.
    pub uid: Uid,
    /// Window token.
    pub token: String,
    /// Whether the Surface currently exists (destroyed in Stopped state).
    pub surface_alive: bool,
    /// Layout size.
    pub size: (u32, u32),
}

/// The window-manager state.
#[derive(Debug)]
pub struct WindowManagerService {
    windows: BTreeMap<(Uid, String), WindowRecord>,
    screen: (u32, u32),
    /// Uids currently inside a startTrimMemory/endTrimMemory bracket.
    trimming: Vec<Uid>,
}

impl WindowManagerService {
    /// Creates the service with the device screen size.
    pub fn new(screen: (u32, u32)) -> Self {
        Self {
            windows: BTreeMap::new(),
            screen,
            trimming: Vec::new(),
        }
    }

    /// Windows of `uid`.
    pub fn windows_of(&self, uid: Uid) -> Vec<&WindowRecord> {
        self.windows.values().filter(|w| w.uid == uid).collect()
    }

    /// The device screen size windows lay out against.
    pub fn screen(&self) -> (u32, u32) {
        self.screen
    }

    /// Destroys the surfaces of `uid`'s windows (app went to background).
    pub fn destroy_surfaces(&mut self, uid: Uid) -> usize {
        let mut n = 0;
        for w in self.windows.values_mut().filter(|w| w.uid == uid) {
            if w.surface_alive {
                w.surface_alive = false;
                n += 1;
            }
        }
        n
    }
}

impl SystemService for WindowManagerService {
    fn descriptor(&self) -> &'static str {
        "IWindowManager"
    }

    fn registry_name(&self) -> &'static str {
        "window"
    }

    fn on_call(
        &mut self,
        ctx: &mut ServiceCtx<'_>,
        method: &str,
        args: &Parcel,
    ) -> Result<Parcel, BinderError> {
        match method {
            "addWindow" => {
                let token = args.str(0)?.to_owned();
                self.windows.insert(
                    (ctx.caller_uid, token.clone()),
                    WindowRecord {
                        uid: ctx.caller_uid,
                        token,
                        surface_alive: true,
                        size: self.screen,
                    },
                );
                Ok(Parcel::new())
            }
            "removeWindow" => {
                let token = args.str(0)?.to_owned();
                self.windows.remove(&(ctx.caller_uid, token));
                Ok(Parcel::new())
            }
            "relayout" => {
                let token = args.str(0)?.to_owned();
                let w = args.i32(1)? as u32;
                let h = args.i32(2)? as u32;
                match self.windows.get_mut(&(ctx.caller_uid, token)) {
                    Some(win) => {
                        win.size = (w.min(self.screen.0), h.min(self.screen.1));
                        win.surface_alive = true;
                        Ok(Parcel::new()
                            .with_i32(win.size.0 as i32)
                            .with_i32(win.size.1 as i32))
                    }
                    None => Err(ctx.fail(self.descriptor(), method, "no such window")),
                }
            }
            "startTrimMemory" => {
                self.trimming.push(ctx.caller_uid);
                Ok(Parcel::new())
            }
            "endTrimMemory" => {
                let uid = ctx.caller_uid;
                self.trimming.retain(|u| *u != uid);
                self.destroy_surfaces(uid);
                Ok(Parcel::new())
            }
            "getInitialDisplaySize" => Ok(Parcel::new()
                .with_i32(self.screen.0 as i32)
                .with_i32(self.screen.1 as i32)),
            other => Err(ctx.fail(self.descriptor(), other, "unhandled method")),
        }
    }

    fn on_uid_death(&mut self, _ctx: &mut ServiceCtx<'_>, uid: Uid) {
        self.windows.retain(|(u, _), _| *u != uid);
        self.trimming.retain(|u| *u != uid);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}
