//! The on-disk frame format shared by journal segments and snapshots.
//!
//! Every durable record is one *frame*:
//!
//! ```text
//! +----------+----------+------------------+
//! | len: u32 | crc: u32 | payload [len]    |   (little-endian header)
//! +----------+----------+------------------+
//! ```
//!
//! `crc` is the CRC-32 (IEEE, reflected — the zlib/PNG polynomial) of the
//! payload bytes. The combination gives torn-write detection without any
//! external dependency: a frame whose header or body was cut short, or
//! whose payload no longer matches its checksum, reads back as
//! [`FrameError::Torn`] and the reader reports the exact byte offset where
//! the valid prefix ends — which is what tolerant tail truncation and
//! snapshot validation are built on.

use std::fmt;

/// Frame header size: `len` + `crc`.
pub const FRAME_HEADER: usize = 8;

/// Frames larger than this are rejected as corrupt rather than allocated.
/// Generous for journal events (a few KB of JSON) and snapshots (MBs for
/// big batch histories), tiny next to a wild length from a bit flip.
pub const MAX_FRAME_PAYLOAD: u32 = 256 * 1024 * 1024;

/// Why a frame failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// The bytes end inside a header or payload, or the checksum does not
    /// match: the tail of the stream was torn by an interrupted write.
    /// `valid_up_to` is the offset where the last fully-valid frame ended.
    Torn {
        /// Byte offset of the end of the valid prefix.
        valid_up_to: usize,
    },
    /// The declared payload length exceeds [`MAX_FRAME_PAYLOAD`].
    Oversized {
        /// Offset of the offending frame header.
        at: usize,
        /// The declared length.
        declared: u32,
    },
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Torn { valid_up_to } => {
                write!(f, "torn frame after byte {valid_up_to}")
            }
            FrameError::Oversized { at, declared } => {
                write!(f, "frame at byte {at} declares absurd length {declared}")
            }
        }
    }
}

impl std::error::Error for FrameError {}

/// CRC-32 (IEEE 802.3, reflected) of `bytes` — the zlib/PNG checksum.
pub fn crc32(bytes: &[u8]) -> u32 {
    // Tableless bitwise implementation; journal frames are small and the
    // replay bench shows this is nowhere near the critical path.
    let mut crc = u32::MAX;
    for &b in bytes {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// Appends one frame wrapping `payload` to `out`.
pub fn write_frame(out: &mut Vec<u8>, payload: &[u8]) {
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
}

/// The result of reading one frame.
#[derive(Debug)]
pub struct Frame<'a> {
    /// The validated payload.
    pub payload: &'a [u8],
    /// Offset of the first byte after this frame.
    pub end: usize,
}

/// Reads the frame starting at `offset`, validating length and checksum.
///
/// `Ok(None)` means `offset` is exactly the end of the buffer (a clean
/// end-of-stream); any partial or corrupt frame is an error carrying the
/// offset of the valid prefix.
pub fn read_frame(bytes: &[u8], offset: usize) -> Result<Option<Frame<'_>>, FrameError> {
    if offset == bytes.len() {
        return Ok(None);
    }
    let torn = FrameError::Torn {
        valid_up_to: offset,
    };
    if offset + FRAME_HEADER > bytes.len() {
        return Err(torn);
    }
    let len = u32::from_le_bytes(bytes[offset..offset + 4].try_into().expect("4 bytes"));
    if len > MAX_FRAME_PAYLOAD {
        return Err(FrameError::Oversized {
            at: offset,
            declared: len,
        });
    }
    let crc = u32::from_le_bytes(bytes[offset + 4..offset + 8].try_into().expect("4 bytes"));
    let start = offset + FRAME_HEADER;
    let end = start + len as usize;
    if end > bytes.len() {
        return Err(torn);
    }
    let payload = &bytes[start..end];
    if crc32(payload) != crc {
        return Err(torn);
    }
    Ok(Some(Frame { payload, end }))
}

/// Walks every frame in `bytes`, returning the payload slices and the
/// offset where the valid prefix ends.
///
/// A torn tail is *not* an error here — the caller decides whether to
/// truncate (journal tail) or reject (snapshot). An [`Oversized`]
/// declaration is folded into the same "valid prefix ends here" shape:
/// recovery treats any undecodable suffix the same way.
///
/// [`Oversized`]: FrameError::Oversized
pub fn scan_frames(bytes: &[u8]) -> (Vec<&[u8]>, usize) {
    let mut payloads = Vec::new();
    let mut offset = 0;
    loop {
        match read_frame(bytes, offset) {
            Ok(Some(frame)) => {
                payloads.push(frame.payload);
                offset = frame.end;
            }
            Ok(None) => return (payloads, offset),
            Err(FrameError::Torn { valid_up_to }) => return (payloads, valid_up_to),
            Err(FrameError::Oversized { at, .. }) => return (payloads, at),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE CRC-32 check values.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn frames_round_trip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"first");
        write_frame(&mut buf, b"");
        write_frame(&mut buf, b"third payload");
        let (payloads, end) = scan_frames(&buf);
        assert_eq!(
            payloads,
            vec![&b"first"[..], &b""[..], &b"third payload"[..]]
        );
        assert_eq!(end, buf.len());
    }

    #[test]
    fn every_truncation_point_yields_a_valid_prefix() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"alpha");
        write_frame(&mut buf, b"beta");
        let frame1_end = FRAME_HEADER + 5;
        for cut in 0..buf.len() {
            let (payloads, end) = scan_frames(&buf[..cut]);
            // The valid prefix is exactly the frames wholly before the cut.
            let expect = usize::from(cut >= frame1_end) + usize::from(cut >= buf.len());
            assert_eq!(payloads.len(), expect, "cut at {cut}");
            assert!(end <= cut);
        }
    }

    #[test]
    fn corrupted_payload_is_torn_at_frame_start() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"alpha");
        write_frame(&mut buf, b"beta");
        let frame1_end = FRAME_HEADER + 5;
        // Flip a bit inside the second payload.
        buf[frame1_end + FRAME_HEADER] ^= 0x40;
        let (payloads, end) = scan_frames(&buf);
        assert_eq!(payloads, vec![&b"alpha"[..]]);
        assert_eq!(end, frame1_end);
    }

    #[test]
    fn absurd_length_declaration_is_rejected_not_allocated() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        buf.extend_from_slice(&0u32.to_le_bytes());
        match read_frame(&buf, 0) {
            Err(FrameError::Oversized { at: 0, declared }) => {
                assert_eq!(declared, u32::MAX);
            }
            other => panic!("expected Oversized, got {other:?}"),
        }
    }
}
