//! The iterative pre-copy phase (stage 0): pre-dump the still-running
//! app, stream the pages over the radio, repeat on what was dirtied
//! meanwhile, until the residue is small or the round budget runs out.
//! The final frozen checkpoint then ships only the dirty delta
//! ([`flux_kernel::ProcessImage::dirty_delta`]) against the last streamed
//! pre-dump.
//!
//! Pre-copy is best effort: a link drop abandons further rounds rather
//! than failing the migration — coverage simply stays at the last fully
//! streamed round (possibly none), and the freeze ships the rest.

use super::failure::StageFailure;
use super::{Stage, StageCtx, StageOutcome};
use crate::cria::IMAGE_COMPRESS_RATIO;
use crate::image_cache;
use crate::migration::{
    StageTimes, PRECOPY_DIRTY_FRACTION_PER_SEC, PRECOPY_MAX_ROUNDS, PRECOPY_STOP,
};
use crate::world::fnv;
use flux_kernel::criu;
use flux_net::DEFAULT_CHUNK;
use flux_simcore::{SimDuration, TraceKind};
use flux_telemetry::LaneId;

/// The pre-copy stage (iterative pre-dump streaming, home device).
pub struct Precopy;

impl Stage for Precopy {
    fn name(&self) -> &'static str {
        "precopy"
    }

    /// Pinned to the pre-naming-scheme span recorded traces carry.
    fn span_name(&self) -> String {
        "migration.precopy".into()
    }

    fn lane(&self, cx: &StageCtx<'_>) -> LaneId {
        cx.mig.home_lane
    }

    fn pending(&self, cx: &StageCtx<'_>) -> bool {
        cx.mig.cfg.precopy && !cx.prog.precopy_done
    }

    fn times_slot<'t>(&self, times: &'t mut StageTimes) -> Option<&'t mut SimDuration> {
        Some(&mut times.precopy)
    }

    fn run(&self, cx: &mut StageCtx<'_>) -> Result<StageOutcome, StageFailure> {
        let package = cx.mig.package.to_owned();
        let mut rounds = 0u32;
        for round in 1..=PRECOPY_MAX_ROUNDS {
            let round_start = cx.world.clock.now();
            // Pre-dump the running process — no freeze, device state skipped.
            let pre = {
                let dev = cx.world.device(cx.mig.home)?;
                let app = dev
                    .apps
                    .get(&package)
                    .ok_or_else(|| StageFailure::NoSuchApp(package.clone()))?;
                criu::predump(&dev.kernel, app.main_pid, round_start)
                    .map_err(|e| StageFailure::Internal(e.to_string()))?
            };
            // This round streams what earlier rounds have not covered.
            let round_payload = match &cx.prog.precopy_base {
                None => pre.payload_bytes(),
                Some(base) => pre.dirty_delta(base).payload_bytes(),
            };
            if cx.prog.precopy_base.is_some() && round_payload <= PRECOPY_STOP {
                break; // Residue small enough: freeze and ship it.
            }
            let mut stream = round_payload.scale(IMAGE_COMPRESS_RATIO);
            // Round 1 covers the bulk of the image; consult the guest's
            // content-addressed cache so only absent chunks hit the air.
            if round == 1 && cx.mig.cfg.image_cache {
                let p = {
                    let dev = cx.world.device(cx.mig.guest)?;
                    image_cache::partition(&dev.fs, &cx.mig.pairing_root, &package, &pre)
                };
                cx.record_cache_counters(&p);
                cx.prog.cache_hit += p.hit_bytes;
                cx.prog.cache_checked = true;
                cx.prog.cache_missed = p.missed;
                stream = p.miss_bytes;
            }
            // CPU: pre-dump and compress the round's pages on the home device.
            cx.world.clock.charge(
                cx.mig
                    .home_cost
                    .checkpoint_time(round_payload, pre.object_count())
                    + cx.mig.home_cost.compress_time(round_payload),
            );
            // Radio: stream the round into the guest's staging area.
            let now = cx.world.clock.now();
            let radio = cx.world.net.transfer_chunked(
                now,
                stream,
                DEFAULT_CHUNK,
                &cx.mig.home_profile.wifi,
                &cx.mig.guest_profile.wifi,
                0,
                cx.plan,
            );
            cx.world.clock.charge(radio.duration);
            cx.world
                .probe
                .record_radio(now, radio.duration, radio.bytes_delivered);
            if !radio.complete() {
                cx.prog.faults += 1;
                cx.world.telemetry.emit_kind(
                    cx.world.clock.now(),
                    TraceKind::Fault,
                    "migration.precopy.abandoned",
                    format!(
                        "link dropped in round {round}; coverage stays at {} streamed round(s)",
                        rounds
                    ),
                );
                break;
            }
            cx.prog.precopy_streamed += stream;
            cx.prog.precopy_base = Some(pre);
            rounds += 1;
            // Chunks the cache lacked arrived with this round's stream.
            cx.insert_cache_misses()?;
            // Record the streamed coverage on the guest so teardown and the
            // rollback invariants can see (and clean) it.
            {
                let dev = cx.world.device_mut(cx.mig.guest)?;
                dev.fs.write(
                    &cx.mig.precopy_path,
                    flux_fs::Content::new(
                        cx.prog.precopy_streamed,
                        fnv(&format!(
                            "{}-precopy-{}",
                            cx.mig.package,
                            cx.prog.precopy_streamed.as_u64()
                        )),
                    ),
                );
            }
            let round_end = cx.world.clock.now();
            cx.world.telemetry.record_complete(
                cx.mig.home_lane,
                &format!("migration.precopy.round{round}"),
                round_start,
                round_end,
            );
            // The foreground app kept writing while the round streamed.
            bump_foreground_dirty(cx, round_end - round_start)?;
        }
        cx.world
            .telemetry
            .counter_add("flux.migration.precopy_rounds", u64::from(rounds));
        cx.world.telemetry.counter_add(
            "flux.migration.precopy_bytes",
            cx.prog.precopy_streamed.as_u64(),
        );
        cx.prog.precopy_done = true;
        Ok(StageOutcome::Completed)
    }

    /// Pre-copy residue on the guest is a plain staging file; remove it.
    /// (The content-addressed cache it fed deliberately survives rollback.)
    fn rollback(&self, cx: &mut StageCtx<'_>) -> Result<(), StageFailure> {
        let dev = cx
            .world
            .device_mut(cx.mig.guest)
            .map_err(|e| StageFailure::RollbackFailed {
                reason: e.to_string(),
            })?;
        let _ = dev.fs.remove(&cx.mig.precopy_path);
        Ok(())
    }
}

/// Models the foreground app dirtying more of its writable working set
/// over `window` of virtual time (what pre-copy rounds race against).
fn bump_foreground_dirty(cx: &mut StageCtx<'_>, window: SimDuration) -> Result<(), StageFailure> {
    let frac = PRECOPY_DIRTY_FRACTION_PER_SEC * window.as_secs_f64();
    let dev = cx.world.device_mut(cx.mig.home)?;
    let pid = dev
        .apps
        .get(cx.mig.package.as_str())
        .ok_or_else(|| StageFailure::NoSuchApp(cx.mig.package.clone()))?
        .main_pid;
    let proc = dev
        .kernel
        .process_mut(pid)
        .map_err(|e| StageFailure::Internal(e.to_string()))?;
    for v in proc.mem.vmas_mut() {
        if v.kind.needs_page_dump() {
            v.dirty = (v.dirty + frac).min(1.0);
        }
    }
    Ok(())
}
