//! The WiFi radio and transfer model.
//!
//! The paper's evaluation ran on a congested campus WiFi network, and "over
//! half the time on average is spent on the data and image transfer over
//! WiFi" (§4). This crate models just enough radio behaviour to reproduce
//! that: per-device adapters with a link standard and band, effective
//! goodput well below link rate, extra congestion on the 2.4 GHz band (the
//! 2012 Nexus 7 "is only capable of operating on the extremely congested
//! 2.4 GHz band"), and deterministic jitter from the simulation RNG.

pub mod medium;
pub mod wifi;

pub use medium::{CellSpec, CellTrace, MediumSegment, RadioMedium, RadioTopology, RoamEvent};
pub use wifi::{
    Band, ChunkEvent, ChunkedOutcome, ChunkedTransfer, NetworkEnv, TransferStats, WifiAdapter,
    WifiStandard, DEFAULT_CHUNK,
};
