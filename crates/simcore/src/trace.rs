//! A lightweight event trace.
//!
//! Migration experiments want to explain *where* virtual time went (Figure
//! 13's stage breakdown). Components append [`TraceEvent`]s as they work and
//! the harnesses aggregate them afterwards.
//!
//! Since the `flux-telemetry` crate landed, [`Trace`] is the flat *event
//! log* layer of the observability stack: `flux_telemetry::Telemetry`
//! embeds one and mirrors every instant event into it, so code written
//! against `events()` / `events_in()` / `events_of_kind()` keeps working
//! unchanged. New instrumentation should prefer the span and metrics APIs
//! in `flux-telemetry`; this type stays dependency-free so `simcore` does
//! not grow an upward edge in the crate graph.

use crate::time::SimTime;
use serde::{Deserialize, Serialize};
use std::fmt;

/// What class of event a trace entry records.
///
/// Figure-13-style accounting wants fault, retry and rollback time kept
/// apart from ordinary progress events, so harnesses can balance the books
/// (time charged = stage time + backoff + stall time) without parsing
/// detail strings.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum TraceKind {
    /// Ordinary progress event.
    #[default]
    Generic,
    /// An injected fault bit a running operation.
    Fault,
    /// A failed stage is being retried (backoff charged).
    Retry,
    /// A failed migration is being rolled back to the home device.
    Rollback,
}

/// One traced event: a timestamp, a kind, a category and a human-readable
/// detail.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Virtual time at which the event occurred.
    pub at: SimTime,
    /// Event class, for typed filtering.
    pub kind: TraceKind,
    /// Dot-separated category, e.g. `"migration.checkpoint"`.
    pub category: String,
    /// Free-form detail for humans and tests.
    pub detail: String,
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}: {}", self.at, self.category, self.detail)
    }
}

/// An append-only trace of simulation events.
///
/// # Examples
///
/// ```
/// use flux_simcore::{SimTime, Trace};
///
/// let mut trace = Trace::new();
/// trace.emit(SimTime::from_millis(5), "binder.transact", "code=1");
/// assert_eq!(trace.events_in("binder").count(), 1);
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Trace {
    events: Vec<TraceEvent>,
    enabled: bool,
    /// Optional cap on `events.len()`; `None` means unbounded.
    capacity: Option<usize>,
    /// Events discarded because the cap was reached.
    dropped: u64,
}

impl Trace {
    /// Creates an enabled, empty, unbounded trace.
    pub fn new() -> Self {
        Self {
            events: Vec::new(),
            enabled: true,
            capacity: None,
            dropped: 0,
        }
    }

    /// Creates a disabled trace that drops all events (for benchmarks).
    pub fn disabled() -> Self {
        Self {
            events: Vec::new(),
            enabled: false,
            capacity: None,
            dropped: 0,
        }
    }

    /// Caps the trace at `limit` events (`None` restores unbounded growth).
    ///
    /// Long fault-sweep runs emit millions of chunk/fault events; a cap
    /// keeps memory flat while [`Trace::dropped`] keeps the books honest.
    /// Events already recorded beyond a newly lowered cap are kept.
    pub fn set_capacity(&mut self, limit: Option<usize>) {
        self.capacity = limit;
    }

    /// The configured capacity, if any.
    pub fn capacity(&self) -> Option<usize> {
        self.capacity
    }

    /// Number of events discarded because the capacity was reached.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Appends a [`TraceKind::Generic`] event if tracing is enabled.
    /// Returns whether the event was recorded.
    pub fn emit(&mut self, at: SimTime, category: &str, detail: impl Into<String>) -> bool {
        self.emit_kind(at, TraceKind::Generic, category, detail)
    }

    /// Appends an event of an explicit kind if tracing is enabled and the
    /// capacity (if set) has not been reached. Returns whether the event
    /// was recorded; a `false` from an enabled trace means it was dropped
    /// and counted in [`Trace::dropped`].
    pub fn emit_kind(
        &mut self,
        at: SimTime,
        kind: TraceKind,
        category: &str,
        detail: impl Into<String>,
    ) -> bool {
        if !self.enabled {
            return false;
        }
        if let Some(cap) = self.capacity {
            if self.events.len() >= cap {
                self.dropped += 1;
                return false;
            }
        }
        self.events.push(TraceEvent {
            at,
            kind,
            category: category.to_owned(),
            detail: detail.into(),
        });
        true
    }

    /// All events, in emission order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Events whose category starts with `prefix`.
    pub fn events_in<'a>(&'a self, prefix: &'a str) -> impl Iterator<Item = &'a TraceEvent> + 'a {
        self.events
            .iter()
            .filter(move |e| e.category.starts_with(prefix))
    }

    /// Events of one [`TraceKind`].
    pub fn events_of_kind(&self, kind: TraceKind) -> impl Iterator<Item = &TraceEvent> + '_ {
        self.events.iter().filter(move |e| e.kind == kind)
    }

    /// Number of events recorded so far.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no events were recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Discards all recorded events and resets the dropped counter.
    pub fn clear(&mut self) {
        self.events.clear();
        self.dropped = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emit_and_filter_by_prefix() {
        let mut t = Trace::new();
        t.emit(SimTime::ZERO, "migration.prep", "background");
        t.emit(SimTime::from_millis(1), "migration.checkpoint", "4 MB");
        t.emit(SimTime::from_millis(2), "binder.transact", "code=3");
        assert_eq!(t.events_in("migration").count(), 2);
        assert_eq!(t.events_in("binder").count(), 1);
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn disabled_trace_drops_events() {
        let mut t = Trace::disabled();
        t.emit(SimTime::ZERO, "x", "y");
        assert!(t.is_empty());
    }

    #[test]
    fn display_is_readable() {
        let e = TraceEvent {
            at: SimTime::from_millis(1500),
            kind: TraceKind::Generic,
            category: "a.b".into(),
            detail: "c".into(),
        };
        assert_eq!(e.to_string(), "[1.500s] a.b: c");
    }

    #[test]
    fn kinds_filter_typed_events() {
        let mut t = Trace::new();
        t.emit(SimTime::ZERO, "migration.prep", "ok");
        t.emit_kind(
            SimTime::from_millis(1),
            TraceKind::Fault,
            "net.fault",
            "link-drop",
        );
        t.emit_kind(
            SimTime::from_millis(2),
            TraceKind::Retry,
            "migration.retry",
            "attempt 2",
        );
        t.emit_kind(
            SimTime::from_millis(3),
            TraceKind::Rollback,
            "migration.rollback",
            "home",
        );
        assert_eq!(t.events_of_kind(TraceKind::Generic).count(), 1);
        assert_eq!(t.events_of_kind(TraceKind::Fault).count(), 1);
        assert_eq!(t.events_of_kind(TraceKind::Retry).count(), 1);
        assert_eq!(t.events_of_kind(TraceKind::Rollback).count(), 1);
    }

    #[test]
    fn capacity_drops_and_counts_overflow() {
        let mut t = Trace::new();
        t.set_capacity(Some(2));
        assert!(t.emit(SimTime::ZERO, "a", "1"));
        assert!(t.emit(SimTime::from_millis(1), "b", "2"));
        assert!(!t.emit(SimTime::from_millis(2), "c", "3"));
        assert!(!t.emit(SimTime::from_millis(3), "d", "4"));
        assert_eq!(t.len(), 2);
        assert_eq!(t.dropped(), 2);
        assert_eq!(t.capacity(), Some(2));
        t.clear();
        assert_eq!(t.dropped(), 0);
        assert!(t.emit(SimTime::from_millis(4), "e", "5"));
    }

    #[test]
    fn unbounded_trace_never_drops() {
        let mut t = Trace::new();
        for i in 0..1_000 {
            assert!(t.emit(SimTime::from_millis(i), "spam", "x"));
        }
        assert_eq!(t.len(), 1_000);
        assert_eq!(t.dropped(), 0);
        assert_eq!(t.capacity(), None);
    }
}
