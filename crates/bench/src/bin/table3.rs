//! Table 3: the top free Android apps and how each was used prior to
//! migration.

use flux_bench::Table;
use flux_workloads::top_apps;

fn main() {
    println!("Table 3: Top free Android apps and how they were used prior to migrating\n");
    let mut t = Table::new(&["NAME", "WORKLOAD"]);
    for spec in top_apps() {
        t.row(vec![spec.name.clone(), spec.workload.clone()]);
    }
    println!("{}", t.render());
}
