//! The §4 migration evaluation: 18 apps × 4 device pairs.

use flux_core::{migrate, pair, MigrationReport, MigrationSpec, WorldBuilder};
use flux_device::{DeviceModel, DeviceProfile};
use flux_simcore::SimDuration;
use flux_workloads::{top_apps, AppSpec};

/// Labels for the four device pairs, in the paper's order.
pub const PAIR_LABELS: [&str; 4] = [
    "Nexus 7 (2013) to Nexus 7 (2013)",
    "Nexus 4 to Nexus 7 (2013)",
    "Nexus 7 to Nexus 7 (2013)",
    "Nexus 7 to Nexus 4",
];

/// One (app, device-pair) migration attempt.
#[derive(Debug, Clone)]
pub struct MigRow {
    /// App display name.
    pub app: String,
    /// Device-pair label.
    pub pair: String,
    /// Pair index 0..4.
    pub pair_index: usize,
    /// The report, or the refusal reason.
    pub outcome: Result<MigrationReport, String>,
}

/// Results of the full evaluation.
#[derive(Debug, Clone, Default)]
pub struct Evaluation {
    /// All rows, apps outermost in Table 3 order.
    pub rows: Vec<MigRow>,
}

impl Evaluation {
    /// Rows for one app across the pairs.
    pub fn rows_of(&self, app: &str) -> Vec<&MigRow> {
        self.rows.iter().filter(|r| r.app == app).collect()
    }

    /// The sixteen app names that migrated successfully everywhere.
    pub fn migratable_apps(&self) -> Vec<String> {
        let mut out = Vec::new();
        for spec in top_apps() {
            let rows = self.rows_of(&spec.name);
            if !rows.is_empty() && rows.iter().all(|r| r.outcome.is_ok()) {
                out.push(spec.name.clone());
            }
        }
        out
    }

    /// Mean total migration time across every successful migration
    /// (the paper's 7.88 s average).
    pub fn mean_total(&self) -> SimDuration {
        self.mean_of(|r| r.stages.total())
    }

    /// Mean user-perceived time (the paper's ≈5.8 s).
    pub fn mean_user_perceived(&self) -> SimDuration {
        self.mean_of(|r| r.stages.user_perceived())
    }

    /// Mean user-perceived time excluding transfer (Figure 14's 1.35 s).
    pub fn mean_sans_transfer(&self) -> SimDuration {
        self.mean_of(|r| r.stages.user_perceived_sans_transfer())
    }

    fn mean_of(&self, f: impl Fn(&MigrationReport) -> SimDuration) -> SimDuration {
        let ok: Vec<&MigrationReport> = self
            .rows
            .iter()
            .filter_map(|r| r.outcome.as_ref().ok())
            .collect();
        if ok.is_empty() {
            return SimDuration::ZERO;
        }
        let sum: u64 = ok.iter().map(|r| f(r).as_nanos()).sum();
        SimDuration::from_nanos(sum / ok.len() as u64)
    }

    /// Average stage-fraction breakdown across successful migrations of
    /// one app: (prep, checkpoint, transfer, restore, reintegration),
    /// summing to 1.0 (Figure 13).
    pub fn breakdown_of(&self, app: &str) -> Option<[f64; 5]> {
        let ok: Vec<&MigrationReport> = self
            .rows_of(app)
            .into_iter()
            .filter_map(|r| r.outcome.as_ref().ok())
            .collect();
        if ok.is_empty() {
            return None;
        }
        let mut acc = [0f64; 5];
        for r in &ok {
            let total = r.stages.total().as_nanos() as f64;
            acc[0] += r.stages.preparation.as_nanos() as f64 / total;
            acc[1] += r.stages.checkpoint.as_nanos() as f64 / total;
            acc[2] += r.stages.transfer.as_nanos() as f64 / total;
            acc[3] += r.stages.restore.as_nanos() as f64 / total;
            acc[4] += r.stages.reintegration.as_nanos() as f64 / total;
        }
        for v in &mut acc {
            *v /= ok.len() as f64;
        }
        Some(acc)
    }

    /// Mean transfer-stage share of total time across everything (>0.5 in
    /// the paper).
    pub fn mean_transfer_share(&self) -> f64 {
        let ok: Vec<&MigrationReport> = self
            .rows
            .iter()
            .filter_map(|r| r.outcome.as_ref().ok())
            .collect();
        if ok.is_empty() {
            return 0.0;
        }
        ok.iter()
            .map(|r| r.stages.transfer.as_nanos() as f64 / r.stages.total().as_nanos() as f64)
            .sum::<f64>()
            / ok.len() as f64
    }
}

/// Runs one migration of `spec` across a fresh pair of devices.
pub fn run_one(
    seed: u64,
    home_model: DeviceModel,
    guest_model: DeviceModel,
    spec: &AppSpec,
) -> Result<MigrationReport, String> {
    let (mut world, ids) = WorldBuilder::new()
        .seed(seed)
        .device("home", DeviceProfile::of(home_model))
        .device("guest", DeviceProfile::of(guest_model))
        .app(0, spec.clone())
        .build()
        .map_err(|e| e.to_string())?;
    let (home, guest) = (ids[0], ids[1]);
    world
        .run_script(home, &spec.package, &spec.actions.clone())
        .map_err(|e| e.to_string())?;
    pair(&mut world, home, guest).map_err(|e| e.to_string())?;
    migrate(
        &mut world,
        MigrationSpec::new(&spec.package).between(home, guest),
    )
    .map_err(|e| e.to_string())
}

/// Runs the full 18-app × 4-pair evaluation.
///
/// Every (app, pair) migration runs in its own world, so the 72 runs are
/// independent and fan out across threads.
pub fn run_full_evaluation(seed: u64) -> Evaluation {
    let pairs = DeviceProfile::evaluation_pairs();
    let apps = top_apps();
    let jobs: Vec<(usize, AppSpec, usize)> = apps
        .iter()
        .enumerate()
        .flat_map(|(a, spec)| (0..pairs.len()).map(move |i| (a, spec.clone(), i)))
        .collect();

    let mut rows: Vec<(usize, MigRow)> = std::thread::scope(|scope| {
        let chunk = jobs.len().div_ceil(num_threads());
        let handles: Vec<_> = jobs
            .chunks(chunk.max(1))
            .map(|batch| {
                let pairs = pairs.clone();
                scope.spawn(move || {
                    batch
                        .iter()
                        .map(|(a, spec, i)| {
                            let (home, guest) = pairs[*i];
                            let outcome = run_one(seed + *i as u64, home, guest, spec);
                            (
                                a * pairs.len() + i,
                                MigRow {
                                    app: spec.name.clone(),
                                    pair: PAIR_LABELS[*i].to_owned(),
                                    pair_index: *i,
                                    outcome,
                                },
                            )
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("evaluation worker panicked"))
            .collect()
    });

    rows.sort_by_key(|(order, _)| *order);
    Evaluation {
        rows: rows.into_iter().map(|(_, r)| r).collect(),
    }
}

fn num_threads() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(4)
        .min(16)
}

#[cfg(test)]
mod tests {
    use super::*;
    use flux_workloads::spec;

    #[test]
    fn whatsapp_migrates_on_every_pair() {
        let s = spec("WhatsApp").unwrap();
        for (i, (h, g)) in DeviceProfile::evaluation_pairs().iter().enumerate() {
            let r = run_one(100 + i as u64, *h, *g, &s);
            assert!(r.is_ok(), "pair {i}: {r:?}");
        }
    }

    #[test]
    fn facebook_and_subway_surfers_fail_as_in_the_paper() {
        let fb = run_one(
            1,
            DeviceModel::Nexus4,
            DeviceModel::Nexus7_2013,
            &spec("Facebook").unwrap(),
        );
        assert!(fb.unwrap_err().contains("multi-process"));
        let ss = run_one(
            1,
            DeviceModel::Nexus4,
            DeviceModel::Nexus7_2013,
            &spec("Subway Surfers").unwrap(),
        );
        assert!(ss.unwrap_err().contains("EGL context"));
    }
}
