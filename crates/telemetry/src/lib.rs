//! `flux-telemetry`: the observability subsystem of the Flux reproduction.
//!
//! The paper's whole evaluation (§6, Figures 12–17) is an exercise in
//! explaining *where virtual time and bytes go* during a migration. This
//! crate provides the machinery to answer that from one instrumented run:
//!
//! * [`Telemetry`] — the per-world hub: hierarchical **spans** over virtual
//!   time (enter/exit with parent links, one lane per simulated device),
//!   lane-attributed **instant events**, and a flat event log that stays
//!   API-compatible with the original `flux_simcore::Trace`.
//! * [`MetricsRegistry`] — counters, gauges and fixed-bucket histograms
//!   under the `flux.<crate>.<name>` naming scheme, held in a `BTreeMap`
//!   so snapshot iteration order — and therefore exporter output — is
//!   byte-stable across runs.
//! * [`export`] — three exporters: Chrome `about://tracing` JSON
//!   ([`export::chrome_trace`]), a per-stage migration profile table
//!   ([`export::MigrationProfile`]) and a plain JSON snapshot
//!   ([`export::json_snapshot`]) for benches and golden tests.
//! * [`json`] — a minimal JSON reader/printer used to validate and
//!   round-trip exporter output without external dependencies.
//!
//! Everything is deterministic: telemetry consumes no randomness and never
//! charges the virtual clock, so enabling it cannot perturb an experiment.
//! A [`Telemetry::disabled`] hub drops every span, event and metric at the
//! first branch, which is what the Figure 16 overhead worlds use.
//!
//! # Examples
//!
//! ```
//! use flux_simcore::{SimClock, SimDuration};
//! use flux_telemetry::{span, Telemetry};
//!
//! let mut tele = Telemetry::new();
//! let mut clock = SimClock::new();
//! let lane = tele.lane("phone");
//! let total = span!(tele, clock, lane, "migration", {
//!     span!(tele, clock, lane, "checkpoint", {
//!         clock.charge(SimDuration::from_millis(250));
//!     });
//!     tele.counter_add("flux.migration.completed", 1);
//!     clock.now()
//! });
//! assert_eq!(total.as_millis(), 250);
//! assert_eq!(tele.spans().len(), 2);
//! assert_eq!(tele.metrics().counter("flux.migration.completed"), 1);
//! ```

pub mod export;
pub mod json;
pub mod metrics;

pub use export::{
    chrome_trace, json_snapshot, stage_metric_name, stage_span_name, MigrationProfile,
    REPORT_STAGES, STAGE_SPAN_PREFIX,
};
pub use metrics::{Histogram, Metric, MetricsRegistry};

use flux_simcore::{SimDuration, SimTime, Trace, TraceKind};

/// Identifies one lane (a simulated device or process) in the span tree
/// and the Chrome trace. Lane 0 is always the world lane.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct LaneId(pub u16);

impl LaneId {
    /// The implicit world lane every hub starts with.
    pub const WORLD: LaneId = LaneId(0);
}

/// Identifies one span within a [`Telemetry`] hub.
///
/// Ids from a disabled hub are inert sentinels; exiting them is a no-op.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SpanId(u32);

impl SpanId {
    const NONE: SpanId = SpanId(u32::MAX);

    /// Whether this id came from a disabled hub (and refers to nothing).
    pub fn is_none(self) -> bool {
        self == Self::NONE
    }

    /// The position of this span in [`Telemetry::spans`], or `None` for
    /// the disabled-hub sentinel. Lets consumers of an exported span list
    /// resolve [`Span::parent`] links.
    pub fn index(self) -> Option<usize> {
        if self.is_none() {
            None
        } else {
            Some(self.0 as usize)
        }
    }
}

/// One hierarchical span: a named interval of virtual time on a lane.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Span {
    /// Span name, e.g. `"migration.stage.transfer"`.
    pub name: String,
    /// Lane (device/process) the span ran on.
    pub lane: LaneId,
    /// Enclosing span on the same lane, if any.
    pub parent: Option<SpanId>,
    /// Virtual time the span was entered.
    pub start: SimTime,
    /// Virtual time the span was exited; `None` while still open.
    pub end: Option<SimTime>,
}

impl Span {
    /// The span's duration (zero while still open).
    pub fn duration(&self) -> SimDuration {
        self.end
            .map(|e| e - self.start)
            .unwrap_or(SimDuration::ZERO)
    }
}

/// A lane-attributed instant event (a Chrome "i" event).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InstantEvent {
    /// Virtual time of the event.
    pub at: SimTime,
    /// Lane it is attributed to.
    pub lane: LaneId,
    /// Event class (generic/fault/retry/rollback).
    pub kind: TraceKind,
    /// Dot-separated event name, e.g. `"net.chunk"`.
    pub name: String,
    /// Free-form detail.
    pub detail: String,
}

/// The per-world telemetry hub. See the [crate docs](self).
#[derive(Debug, Clone)]
pub struct Telemetry {
    enabled: bool,
    lanes: Vec<String>,
    spans: Vec<Span>,
    /// Per-lane stack of open spans (indices into `spans`).
    open: Vec<Vec<u32>>,
    instants: Vec<InstantEvent>,
    events: Trace,
    metrics: MetricsRegistry,
}

impl Default for Telemetry {
    fn default() -> Self {
        Self::new()
    }
}

impl Telemetry {
    /// Creates an enabled hub with the world lane registered.
    pub fn new() -> Self {
        Self {
            enabled: true,
            lanes: vec!["world".to_owned()],
            spans: Vec::new(),
            open: vec![Vec::new()],
            instants: Vec::new(),
            events: Trace::new(),
            metrics: MetricsRegistry::new(),
        }
    }

    /// Creates a disabled hub: every span, event and metric is dropped at
    /// the first branch. Used by overhead-comparison worlds and benches.
    pub fn disabled() -> Self {
        Self {
            enabled: false,
            lanes: vec!["world".to_owned()],
            spans: Vec::new(),
            open: vec![Vec::new()],
            instants: Vec::new(),
            events: Trace::disabled(),
            metrics: MetricsRegistry::new(),
        }
    }

    /// Whether the hub records anything.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Caps the flat event log and the instant-event list at `limit`
    /// entries each; events beyond the cap are counted as dropped (see
    /// [`Telemetry::dropped_events`]) instead of growing memory without
    /// bound during long fault sweeps.
    pub fn set_event_capacity(&mut self, limit: usize) {
        self.events.set_capacity(Some(limit));
    }

    /// Events dropped by the capacity limit so far. Exported as the
    /// `flux.telemetry.events_dropped` metric in snapshots.
    pub fn dropped_events(&self) -> u64 {
        self.events.dropped()
    }

    // ---- lanes ----------------------------------------------------------

    /// Interns a lane by name, returning its id. Registering the same name
    /// twice returns the same lane.
    pub fn lane(&mut self, name: &str) -> LaneId {
        if let Some(i) = self.lanes.iter().position(|l| l == name) {
            return LaneId(i as u16);
        }
        self.lanes.push(name.to_owned());
        self.open.push(Vec::new());
        LaneId((self.lanes.len() - 1) as u16)
    }

    /// Registered lane names, in registration order.
    pub fn lanes(&self) -> &[String] {
        &self.lanes
    }

    // ---- spans ----------------------------------------------------------

    /// Opens a span on `lane` at virtual time `at`. The parent is the
    /// innermost span still open on the same lane.
    pub fn enter(&mut self, lane: LaneId, name: &str, at: SimTime) -> SpanId {
        if !self.enabled {
            return SpanId::NONE;
        }
        let lane_ix = (lane.0 as usize).min(self.open.len() - 1);
        let parent = self.open[lane_ix].last().map(|&i| SpanId(i));
        let id = self.spans.len() as u32;
        self.spans.push(Span {
            name: name.to_owned(),
            lane: LaneId(lane_ix as u16),
            parent,
            start: at,
            end: None,
        });
        self.open[lane_ix].push(id);
        SpanId(id)
    }

    /// Closes span `id` at virtual time `at`. Any children still open on
    /// the same lane are closed at the same instant, so spans always nest
    /// strictly. Exiting an already-closed span (or a disabled-hub
    /// sentinel) is a no-op.
    pub fn exit(&mut self, id: SpanId, at: SimTime) {
        if !self.enabled || id.is_none() {
            return;
        }
        let Some(span) = self.spans.get(id.0 as usize) else {
            return;
        };
        let lane_ix = span.lane.0 as usize;
        if !self.open[lane_ix].contains(&id.0) {
            return;
        }
        while let Some(top) = self.open[lane_ix].pop() {
            if self.spans[top as usize].end.is_none() {
                self.spans[top as usize].end = Some(at);
            }
            if top == id.0 {
                break;
            }
        }
    }

    /// Records an already-completed span `[start, end]` on `lane`, parented
    /// under the lane's innermost open span without touching the stack.
    /// Used to attribute a lump-charged cost window after the fact (e.g.
    /// splitting a CRIU checkpoint charge into per-driver sub-spans).
    pub fn record_complete(&mut self, lane: LaneId, name: &str, start: SimTime, end: SimTime) {
        if !self.enabled {
            return;
        }
        let lane_ix = (lane.0 as usize).min(self.open.len() - 1);
        let parent = self.open[lane_ix].last().map(|&i| SpanId(i));
        self.spans.push(Span {
            name: name.to_owned(),
            lane: LaneId(lane_ix as u16),
            parent,
            start,
            end: Some(end),
        });
    }

    /// Closes every span still open on `lane`, at virtual time `at`.
    /// Error paths use this to settle a device lane whose stage spans were
    /// abandoned by an early return before continuing on another lane.
    pub fn finish_lane(&mut self, lane: LaneId, at: SimTime) {
        if !self.enabled {
            return;
        }
        let lane_ix = (lane.0 as usize).min(self.open.len() - 1);
        while let Some(top) = self.open[lane_ix].pop() {
            if self.spans[top as usize].end.is_none() {
                self.spans[top as usize].end = Some(at);
            }
        }
    }

    /// Closes every span still open, at virtual time `at`. Call before
    /// exporting so the trace contains no dangling intervals.
    pub fn finish(&mut self, at: SimTime) {
        if !self.enabled {
            return;
        }
        for stack in &mut self.open {
            while let Some(top) = stack.pop() {
                if self.spans[top as usize].end.is_none() {
                    self.spans[top as usize].end = Some(at);
                }
            }
        }
    }

    /// Folds another hub's record into this one, displacing every
    /// timestamp `shift` later.
    ///
    /// `other`'s lanes are matched **by name** (and interned here when
    /// missing — `other`'s world lane merges into this world lane); its
    /// spans are appended in creation order with parent links remapped, so
    /// the span *tree* arrives intact; its instant events are re-emitted
    /// through [`Telemetry::instant`], so this hub's event capacity
    /// applies; its metrics merge by kind (counters add, gauges
    /// last-write-wins, histograms bucket-wise). Absorbing the same hub
    /// into two hubs in the same order produces byte-identical state,
    /// which is what lets serial and parallel fleet executors share one
    /// merge path.
    ///
    /// Spans still open in `other` stay open here (and are *not* pushed on
    /// any open-stack, so [`Telemetry::finish`] will not close them);
    /// callers should finish the absorbed hub first. No-op when this hub
    /// is disabled.
    pub fn absorb(&mut self, other: &Telemetry, shift: SimDuration) {
        if !self.enabled {
            return;
        }
        let lane_map: Vec<LaneId> = other.lanes.iter().map(|n| self.lane(n)).collect();
        let base = self.spans.len() as u32;
        for span in &other.spans {
            self.spans.push(Span {
                name: span.name.clone(),
                lane: lane_map[span.lane.0 as usize],
                parent: span.parent.map(|p| SpanId(base + p.0)),
                start: span.start + shift,
                end: span.end.map(|e| e + shift),
            });
        }
        for ev in &other.instants {
            self.instant(
                lane_map[ev.lane.0 as usize],
                ev.kind,
                &ev.name,
                ev.at + shift,
                ev.detail.clone(),
            );
        }
        self.metrics.merge_from(&other.metrics);
    }

    /// All spans recorded so far, in creation order.
    pub fn spans(&self) -> &[Span] {
        &self.spans
    }

    /// Total duration of all *closed* spans whose name is exactly `name`.
    pub fn span_total(&self, name: &str) -> SimDuration {
        self.spans
            .iter()
            .filter(|s| s.name == name)
            .map(Span::duration)
            .fold(SimDuration::ZERO, |a, d| a + d)
    }

    // ---- events ---------------------------------------------------------

    /// Records a lane-attributed instant event and mirrors it into the
    /// flat compatibility log. Subject to the event capacity.
    pub fn instant(
        &mut self,
        lane: LaneId,
        kind: TraceKind,
        name: &str,
        at: SimTime,
        detail: impl Into<String>,
    ) {
        if !self.enabled {
            return;
        }
        let detail = detail.into();
        if self.events.emit_kind(at, kind, name, detail.clone()) {
            self.instants.push(InstantEvent {
                at,
                lane: LaneId((lane.0 as usize).min(self.lanes.len() - 1) as u16),
                kind,
                name: name.to_owned(),
                detail,
            });
        }
    }

    /// Compatibility shim for `Trace::emit`: a generic event on the world
    /// lane.
    pub fn emit(&mut self, at: SimTime, category: &str, detail: impl Into<String>) {
        self.instant(LaneId::WORLD, TraceKind::Generic, category, at, detail);
    }

    /// Compatibility shim for `Trace::emit_kind`: a typed event on the
    /// world lane.
    pub fn emit_kind(
        &mut self,
        at: SimTime,
        kind: TraceKind,
        category: &str,
        detail: impl Into<String>,
    ) {
        self.instant(LaneId::WORLD, kind, category, at, detail);
    }

    /// The flat event log (the original `flux_simcore::Trace` API:
    /// `events()`, `events_in()`, `events_of_kind()`, `len()`).
    pub fn events(&self) -> &Trace {
        &self.events
    }

    /// Lane-attributed instant events, in emission order.
    pub fn instants(&self) -> &[InstantEvent] {
        &self.instants
    }

    // ---- metrics --------------------------------------------------------

    /// The metrics registry.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// Mutable access to the metrics registry (for registration).
    pub fn metrics_mut(&mut self) -> &mut MetricsRegistry {
        &mut self.metrics
    }

    /// Adds `delta` to the counter `name`, creating it at zero on first
    /// use. No-op when disabled.
    pub fn counter_add(&mut self, name: &str, delta: u64) {
        if self.enabled {
            self.metrics.counter_add(name, delta);
        }
    }

    /// Sets the counter `name` to an absolute value (idempotent harvest;
    /// see [`MetricsRegistry::counter_set`]). No-op when disabled.
    pub fn counter_set(&mut self, name: &str, value: u64) {
        if self.enabled {
            self.metrics.counter_set(name, value);
        }
    }

    /// Sets the gauge `name` to `value`. No-op when disabled.
    pub fn gauge_set(&mut self, name: &str, value: f64) {
        if self.enabled {
            self.metrics.gauge_set(name, value);
        }
    }

    /// Observes `value` in the histogram `name` (auto-registered with the
    /// default millisecond buckets on first use). No-op when disabled.
    pub fn observe(&mut self, name: &str, value: u64) {
        if self.enabled {
            self.metrics.observe(name, value);
        }
    }
}

/// Brackets `$body` in a span: enters on `$lane` at `$clock.now()`,
/// evaluates the body, exits at the (possibly advanced) `$clock.now()`.
///
/// The telemetry and clock expressions are re-evaluated around the body, so
/// `span!(world.telemetry, world.clock, lane, "x", { use_world(world) })`
/// borrows cleanly. Early returns inside the body skip the exit; the span
/// is then closed when its parent exits (or at [`Telemetry::finish`]).
#[macro_export]
macro_rules! span {
    ($tele:expr, $clock:expr, $lane:expr, $name:expr, $body:expr) => {{
        let __flux_span = {
            let __flux_now = $clock.now();
            $tele.enter($lane, $name, __flux_now)
        };
        let __flux_out = $body;
        {
            let __flux_now = $clock.now();
            $tele.exit(__flux_span, __flux_now);
        }
        __flux_out
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn spans_link_parents_per_lane() {
        let mut tele = Telemetry::new();
        let a = tele.lane("a");
        let b = tele.lane("b");
        let outer = tele.enter(a, "outer", t(0));
        let inner = tele.enter(a, "inner", t(1));
        let other = tele.enter(b, "other", t(1));
        assert_eq!(tele.spans()[1].parent, Some(outer));
        assert_eq!(tele.spans()[2].parent, None);
        tele.exit(inner, t(2));
        tele.exit(outer, t(3));
        tele.exit(other, t(4));
        assert_eq!(tele.spans()[0].duration(), SimDuration::from_millis(3));
        assert_eq!(tele.spans()[1].duration(), SimDuration::from_millis(1));
    }

    #[test]
    fn exiting_parent_closes_open_children() {
        let mut tele = Telemetry::new();
        let lane = tele.lane("dev");
        let outer = tele.enter(lane, "outer", t(0));
        let _inner = tele.enter(lane, "inner", t(1));
        tele.exit(outer, t(5));
        assert!(tele
            .spans()
            .iter()
            .all(|s| s.end == Some(t(5)) || s.end == Some(t(5))));
        assert_eq!(tele.spans()[1].end, Some(t(5)));
        // Double exit is a no-op.
        tele.exit(outer, t(9));
        assert_eq!(tele.spans()[0].end, Some(t(5)));
    }

    #[test]
    fn disabled_hub_records_nothing() {
        let mut tele = Telemetry::disabled();
        let lane = tele.lane("dev");
        let id = tele.enter(lane, "x", t(0));
        assert!(id.is_none());
        tele.exit(id, t(1));
        tele.instant(lane, TraceKind::Fault, "f", t(1), "boom");
        tele.counter_add("flux.x", 1);
        assert!(tele.spans().is_empty());
        assert!(tele.instants().is_empty());
        assert_eq!(tele.metrics().iter().count(), 0);
    }

    #[test]
    fn lane_interning_is_idempotent() {
        let mut tele = Telemetry::new();
        let a = tele.lane("phone");
        let b = tele.lane("phone");
        assert_eq!(a, b);
        assert_eq!(tele.lanes(), &["world".to_owned(), "phone".to_owned()]);
    }

    #[test]
    fn span_total_sums_across_attempts() {
        let mut tele = Telemetry::new();
        let lane = tele.lane("dev");
        for i in 0..3u64 {
            let s = tele.enter(lane, "stage.transfer", t(10 * i));
            tele.exit(s, t(10 * i + 4));
        }
        assert_eq!(
            tele.span_total("stage.transfer"),
            SimDuration::from_millis(12)
        );
    }

    #[test]
    fn capacity_caps_instants_and_counts_drops() {
        let mut tele = Telemetry::new();
        tele.set_event_capacity(2);
        for i in 0..5 {
            tele.emit(t(i), "spam", "x");
        }
        assert_eq!(tele.events().len(), 2);
        assert_eq!(tele.instants().len(), 2);
        assert_eq!(tele.dropped_events(), 3);
    }

    #[test]
    fn record_complete_parents_under_open_span() {
        let mut tele = Telemetry::new();
        let lane = tele.lane("dev");
        let stage = tele.enter(lane, "stage.checkpoint", t(0));
        tele.record_complete(lane, "criu.dump", t(0), t(3));
        tele.exit(stage, t(5));
        assert_eq!(tele.spans()[1].parent, Some(stage));
        assert_eq!(tele.spans()[1].duration(), SimDuration::from_millis(3));
    }

    #[test]
    fn finish_closes_everything() {
        let mut tele = Telemetry::new();
        let lane = tele.lane("dev");
        tele.enter(lane, "a", t(0));
        tele.enter(lane, "b", t(1));
        tele.finish(t(7));
        assert!(tele.spans().iter().all(|s| s.end == Some(t(7))));
    }
}
