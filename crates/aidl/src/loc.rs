//! Decoration line-of-code accounting.
//!
//! Table 2 of the paper reports, per decorated service, the number of lines
//! of Flux decorator code added to its interface definition. This module
//! measures exactly that from a decorated AIDL source text: the lines
//! occupied by `@record` decorations (bare, or through the matching closing
//! brace of the block form), so the Table 2 harness can regenerate the LOC
//! column from the same sources the runtime compiles.

/// Counts the lines of decorator code in a decorated AIDL source.
///
/// A bare `@record` counts as one line; a block form counts every line from
/// the `@record {` through its closing `}` inclusive. Line continuations
/// (`\`) inside a block are already separate source lines and count as such,
/// matching how the paper counts Figure 9.
///
/// # Examples
///
/// ```
/// let src = "interface IX {\n  @record\n  void a(int i);\n}";
/// assert_eq!(flux_aidl::decoration_loc(src), 1);
/// ```
pub fn decoration_loc(src: &str) -> usize {
    let mut total = 0usize;
    let mut depth = 0usize; // Brace depth inside an open @record block.
    let mut in_block = false;
    for line in src.lines() {
        let trimmed = strip_comment(line).trim().to_owned();
        if in_block {
            total += 1;
            depth += trimmed.matches('{').count();
            depth = depth.saturating_sub(trimmed.matches('}').count());
            if depth == 0 {
                in_block = false;
            }
            continue;
        }
        if let Some(rest) = trimmed.strip_prefix("@record") {
            total += 1;
            let opens = rest.matches('{').count();
            let closes = rest.matches('}').count();
            if opens > closes {
                depth = opens - closes;
                in_block = true;
            }
        }
    }
    total
}

/// Strips a trailing `//` comment (string literals do not occur in AIDL).
fn strip_comment(line: &str) -> &str {
    match line.find("//") {
        Some(i) => &line[..i],
        None => line,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bare_record_is_one_line() {
        let src = "interface IX {\n@record\nvoid a();\n}";
        assert_eq!(decoration_loc(src), 1);
    }

    #[test]
    fn block_counts_through_closing_brace() {
        let src = r#"
interface INotificationManager {
    @record
    void enqueueNotification(int id, Notification notification);

    @record {
        @drop this, enqueueNotification;
        @if id;
    }
    void cancelNotification(int id);
}
"#;
        // 1 (bare) + 4 (block: @record {, @drop, @if, }).
        assert_eq!(decoration_loc(src), 5);
    }

    #[test]
    fn figure_9_style_continuation_counts_each_line() {
        let src = r#"
interface IAlarmManager {
    @record {
        @drop this;
        @if operation;
        @replayproxy \
            flux.recordreplay.Proxies.alarmMgrSet;
    }
    void set(int type, long triggerAtTime, in PendingIntent operation);
}
"#;
        // @record { / @drop / @if / @replayproxy \ / path; / } = 6 lines.
        assert_eq!(decoration_loc(src), 6);
    }

    #[test]
    fn comments_outside_decorations_do_not_count() {
        let src = "// @record in a comment\ninterface IX { void a(); }";
        assert_eq!(decoration_loc(src), 0);
    }

    #[test]
    fn multiple_blocks_accumulate() {
        let src =
            "interface IX {\n@record {\n@drop this;\n}\nvoid a(int i);\n@record\nvoid b();\n}";
        assert_eq!(decoration_loc(src), 4);
    }
}
