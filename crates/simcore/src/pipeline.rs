//! A virtual-time pipeline scheduler.
//!
//! The serial migration path charges every cost to the single [`SimClock`](crate::SimClock)
//! in sequence, so checkpoint compression, radio transfer and filesystem
//! sync can never overlap. A [`Pipeline`] models the overlap the real
//! system gets from running those on separate hardware resources (CPU,
//! radio, flash): each *lane* keeps its own cursor, work items charge only
//! their lane, and the pipeline ends at the maximum cursor. The difference
//! between the summed busy time and the wall-clock span is exactly the
//! latency the overlap hid.
//!
//! The scheduler is purely arithmetic over [`SimTime`] — no threads, no
//! interleaving nondeterminism — so pipelined runs stay byte-identical for
//! a fixed seed, the repo's core invariant.
//!
//! # Examples
//!
//! ```
//! use flux_simcore::pipeline::Pipeline;
//! use flux_simcore::{SimDuration, SimTime};
//!
//! let mut p = Pipeline::begin(SimTime::ZERO);
//! let cpu = p.lane();
//! let radio = p.lane();
//! // 4s of compression and 6s of transfer, started together:
//! p.run(cpu, SimDuration::from_secs(4));
//! p.run(radio, SimDuration::from_secs(6));
//! assert_eq!(p.wall(), SimDuration::from_secs(6));
//! assert_eq!(p.busy(), SimDuration::from_secs(10));
//! assert_eq!(p.overlap_saved(), SimDuration::from_secs(4));
//! ```

use crate::time::{SimDuration, SimTime};
use std::collections::BTreeMap;

/// Handle to one pipeline lane (an independent resource: CPU, radio, flash).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PipeLane(usize);

/// A set of concurrent lanes advancing through virtual time together.
#[derive(Debug, Clone)]
pub struct Pipeline {
    start: SimTime,
    lanes: Vec<SimTime>,
    busy: SimDuration,
}

impl Pipeline {
    /// Opens a pipeline; every lane's cursor starts at `now`.
    pub fn begin(now: SimTime) -> Self {
        Self {
            start: now,
            lanes: Vec::new(),
            busy: SimDuration::ZERO,
        }
    }

    /// Adds a lane and returns its handle.
    pub fn lane(&mut self) -> PipeLane {
        self.lanes.push(self.start);
        PipeLane(self.lanes.len() - 1)
    }

    /// Charges `work` to `lane` starting at its current cursor.
    /// Returns the `(start, end)` window the work occupied.
    pub fn run(&mut self, lane: PipeLane, work: SimDuration) -> (SimTime, SimTime) {
        self.run_after(lane, self.start, work)
    }

    /// Charges `work` to `lane`, starting no earlier than `ready` (e.g. the
    /// moment the first compressed chunk exists for the radio to send).
    /// The work begins at `max(lane cursor, ready)` — lanes are in-order —
    /// and the lane cursor advances to its end.
    pub fn run_after(
        &mut self,
        lane: PipeLane,
        ready: SimTime,
        work: SimDuration,
    ) -> (SimTime, SimTime) {
        let cursor = &mut self.lanes[lane.0];
        let begin = if *cursor > ready { *cursor } else { ready };
        let end = begin + work;
        *cursor = end;
        self.busy += work;
        (begin, end)
    }

    /// The virtual time at which the pipeline opened.
    pub fn start(&self) -> SimTime {
        self.start
    }

    /// A lane's current cursor.
    pub fn cursor(&self, lane: PipeLane) -> SimTime {
        self.lanes[lane.0]
    }

    /// The virtual time at which every lane has drained: the pipeline's
    /// end, to which the caller advances its [`SimClock`](crate::SimClock).
    pub fn end(&self) -> SimTime {
        self.lanes.iter().copied().max().unwrap_or(self.start)
    }

    /// Wall-clock span of the pipeline (`end - start`).
    pub fn wall(&self) -> SimDuration {
        self.end().since(self.start)
    }

    /// Total work charged across all lanes — what a serial schedule would
    /// have cost.
    pub fn busy(&self) -> SimDuration {
        self.busy
    }

    /// Latency hidden by the overlap: `busy - wall`. Zero when nothing
    /// overlapped (single lane, or strictly dependent work).
    pub fn overlap_saved(&self) -> SimDuration {
        self.busy.saturating_sub(self.wall())
    }
}

/// The fused CPU/radio window a pipelined migration stage schedules on:
/// deferred CPU work (checkpoint compression) overlapping an in-order
/// radio flow that may only start once the first of `items` equal outputs
/// exists — a `cpu_work / items` lead after the window opens.
///
/// This is the lane arithmetic the transfer stage feeds its chunked radio
/// flow through; keeping it here makes the
/// overlap model a scheduler *input* rather than ad-hoc code at the call
/// site, and keeps it byte-identical across callers.
///
/// # Examples
///
/// ```
/// use flux_simcore::pipeline::FusedLanes;
/// use flux_simcore::{SimDuration, SimTime};
///
/// // 4s of compression into 4 chunks: the radio may start after 1s.
/// let mut w = FusedLanes::begin(SimTime::ZERO, SimDuration::from_secs(4), 4);
/// assert_eq!(w.radio_ready(), SimTime::from_secs(1));
/// w.run_radio(SimDuration::from_secs(6));
/// assert_eq!(w.end(), SimTime::from_secs(7));
/// assert_eq!(w.overlap_saved(), SimDuration::from_secs(3));
/// ```
#[derive(Debug, Clone)]
pub struct FusedLanes {
    pipe: Pipeline,
    radio: PipeLane,
    radio_ready: SimTime,
    cpu_window: (SimTime, SimTime),
}

impl FusedLanes {
    /// Opens the window at `start`: `cpu_work` charges the CPU lane from
    /// `start`, and the radio becomes ready one item's worth of CPU time
    /// later (`start + cpu_work / max(items, 1)`).
    pub fn begin(start: SimTime, cpu_work: SimDuration, items: u64) -> Self {
        let mut pipe = Pipeline::begin(start);
        let cpu = pipe.lane();
        let radio = pipe.lane();
        let lead = cpu_work / items.max(1);
        let cpu_window = pipe.run(cpu, cpu_work);
        Self {
            pipe,
            radio,
            radio_ready: start + lead,
            cpu_window,
        }
    }

    /// The instant the radio flow may begin (first output available).
    pub fn radio_ready(&self) -> SimTime {
        self.radio_ready
    }

    /// Charges the radio flow's air time to the radio lane, starting no
    /// earlier than [`radio_ready`](Self::radio_ready).
    pub fn run_radio(&mut self, work: SimDuration) {
        self.pipe.run_after(self.radio, self.radio_ready, work);
    }

    /// The `(start, end)` window the CPU work occupied — what the caller
    /// records its compression span over.
    pub fn cpu_window(&self) -> (SimTime, SimTime) {
        self.cpu_window
    }

    /// The instant both lanes have drained; advance the clock here.
    pub fn end(&self) -> SimTime {
        self.pipe.end()
    }

    /// Latency the CPU/radio overlap hid (see [`Pipeline::overlap_saved`]).
    pub fn overlap_saved(&self) -> SimDuration {
        self.pipe.overlap_saved()
    }
}

/// A deterministic discrete-event queue over virtual time.
///
/// [`Pipeline`] handles a *fixed* set of lanes whose work is scheduled
/// up-front; a [`Timeline`] generalises it to a *dynamic* population of
/// concurrent lanes — the fleet scheduler's in-flight migrations — whose
/// next step is only known as earlier steps complete. Events fire in
/// virtual-time order; simultaneous events fire in ascending `key` order
/// (the fleet uses the stable request id), never in insertion order, so a
/// run is byte-identical however the caller discovered the events.
///
/// Scheduling a second event with the same `(at, key)` replaces the first,
/// mirroring `BTreeMap` semantics.
///
/// # Examples
///
/// ```
/// use flux_simcore::pipeline::Timeline;
/// use flux_simcore::SimTime;
///
/// let mut tl = Timeline::new();
/// tl.schedule(SimTime::from_secs(5), 2, "b");
/// tl.schedule(SimTime::from_secs(5), 1, "a"); // same instant, smaller key
/// tl.schedule(SimTime::from_secs(3), 9, "first");
/// assert_eq!(tl.next_at(), Some(SimTime::from_secs(3)));
/// assert_eq!(tl.pop(), Some((SimTime::from_secs(3), 9, "first")));
/// assert_eq!(tl.pop(), Some((SimTime::from_secs(5), 1, "a")));
/// assert_eq!(tl.pop(), Some((SimTime::from_secs(5), 2, "b")));
/// assert_eq!(tl.pop(), None);
/// ```
#[derive(Debug, Clone)]
pub struct Timeline<T> {
    events: BTreeMap<(SimTime, u64), T>,
}

impl<T> Timeline<T> {
    /// An empty timeline.
    pub fn new() -> Self {
        Self {
            events: BTreeMap::new(),
        }
    }

    /// Schedules `payload` to fire at `at`; among events at the same
    /// instant, smaller `key`s fire first. Returns the payload it
    /// replaced, if `(at, key)` was already scheduled.
    pub fn schedule(&mut self, at: SimTime, key: u64, payload: T) -> Option<T> {
        self.events.insert((at, key), payload)
    }

    /// The instant of the earliest pending event.
    pub fn next_at(&self) -> Option<SimTime> {
        self.events.keys().next().map(|&(at, _)| at)
    }

    /// Removes and returns the earliest pending event (ties by key).
    pub fn pop(&mut self) -> Option<(SimTime, u64, T)> {
        self.events
            .pop_first()
            .map(|((at, key), payload)| (at, key, payload))
    }

    /// The earliest pending event, without removing it (ties by key).
    pub fn peek(&self) -> Option<(SimTime, u64, &T)> {
        self.events
            .first_key_value()
            .map(|(&(at, key), payload)| (at, key, payload))
    }

    /// Like [`Timeline::pop`], but only if the earliest event fires at or
    /// before `now` — the fleet loop's "drain everything due" helper.
    ///
    /// One tree descent, not two: with a stage-level fleet this runs once
    /// per slice across 10k–100k in-flight migrations, so the lookup is on
    /// the event loop's hot path.
    pub fn pop_due(&mut self, now: SimTime) -> Option<(SimTime, u64, T)> {
        let first = self.events.first_entry()?;
        if first.key().0 <= now {
            let ((at, key), payload) = first.remove_entry();
            Some((at, key, payload))
        } else {
            None
        }
    }

    /// The instant of the earliest pending event, if it fires strictly
    /// before `horizon` — the interrupt-delivery probe: a stage about to
    /// charge an indivisible window `[now, horizon)` asks whether anything
    /// on the timeline must land inside it, and cuts the window at a slice
    /// boundary if so.
    pub fn next_before(&self, horizon: SimTime) -> Option<SimTime> {
        self.next_at().filter(|&at| at < horizon)
    }

    /// Merges every pending event of `other` into this timeline. Events
    /// keep their `(SimTime, key)` positions, so the merged timeline fires
    /// them in the same total order a single timeline would have; on an
    /// exact `(at, key)` collision `other`'s payload wins, mirroring
    /// [`Timeline::schedule`].
    pub fn merge(&mut self, other: Timeline<T>) {
        self.events.extend(other.events);
    }

    /// Whether any event is pending.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.events.len()
    }
}

impl<T> Default for Timeline<T> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_lane_matches_serial() {
        let mut p = Pipeline::begin(SimTime::from_secs(5));
        let l = p.lane();
        p.run(l, SimDuration::from_secs(2));
        p.run(l, SimDuration::from_secs(3));
        assert_eq!(p.end(), SimTime::from_secs(10));
        assert_eq!(p.wall(), SimDuration::from_secs(5));
        assert_eq!(p.busy(), SimDuration::from_secs(5));
        assert_eq!(p.overlap_saved(), SimDuration::ZERO);
    }

    #[test]
    fn parallel_lanes_overlap() {
        let mut p = Pipeline::begin(SimTime::ZERO);
        let cpu = p.lane();
        let radio = p.lane();
        let flash = p.lane();
        p.run(cpu, SimDuration::from_millis(400));
        p.run(radio, SimDuration::from_millis(900));
        p.run(flash, SimDuration::from_millis(250));
        assert_eq!(p.wall(), SimDuration::from_millis(900));
        assert_eq!(p.busy(), SimDuration::from_millis(1550));
        assert_eq!(p.overlap_saved(), SimDuration::from_millis(650));
    }

    #[test]
    fn run_after_waits_for_readiness() {
        let mut p = Pipeline::begin(SimTime::ZERO);
        let cpu = p.lane();
        let radio = p.lane();
        let (_, compressed) = p.run(cpu, SimDuration::from_secs(2));
        // The radio can only start once the first output exists.
        let (start, end) = p.run_after(radio, compressed, SimDuration::from_secs(3));
        assert_eq!(start, SimTime::from_secs(2));
        assert_eq!(end, SimTime::from_secs(5));
        // Lane cursors are in-order: later work on the radio lane queues
        // behind the first even if its input was ready earlier.
        let (s2, _) = p.run_after(radio, SimTime::from_secs(1), SimDuration::from_secs(1));
        assert_eq!(s2, SimTime::from_secs(5));
        assert_eq!(p.end(), SimTime::from_secs(6));
    }

    #[test]
    fn empty_pipeline_spans_nothing() {
        let p = Pipeline::begin(SimTime::from_secs(7));
        assert_eq!(p.end(), SimTime::from_secs(7));
        assert_eq!(p.wall(), SimDuration::ZERO);
        assert_eq!(p.overlap_saved(), SimDuration::ZERO);
    }

    #[test]
    fn fused_lanes_match_a_hand_built_pipeline() {
        let start = SimTime::from_secs(10);
        let cpu_work = SimDuration::from_millis(4000);
        let air = SimDuration::from_millis(9000);
        let items = 7u64;

        let mut manual = Pipeline::begin(start);
        let cpu = manual.lane();
        let radio = manual.lane();
        let lead = cpu_work / items;
        let cpu_window = manual.run(cpu, cpu_work);
        manual.run_after(radio, start + lead, air);

        let mut fused = FusedLanes::begin(start, cpu_work, items);
        assert_eq!(fused.radio_ready(), start + lead);
        assert_eq!(fused.cpu_window(), cpu_window);
        fused.run_radio(air);
        assert_eq!(fused.end(), manual.end());
        assert_eq!(fused.overlap_saved(), manual.overlap_saved());
    }

    #[test]
    fn fused_lanes_with_no_cpu_work_add_no_lead_and_no_overlap() {
        let mut w = FusedLanes::begin(SimTime::from_secs(3), SimDuration::ZERO, 0);
        assert_eq!(w.radio_ready(), SimTime::from_secs(3));
        w.run_radio(SimDuration::from_secs(2));
        assert_eq!(w.end(), SimTime::from_secs(5));
        assert_eq!(w.overlap_saved(), SimDuration::ZERO);
    }

    #[test]
    fn timeline_orders_by_time_then_key_regardless_of_insertion() {
        let mut a = Timeline::new();
        a.schedule(SimTime::from_secs(2), 7, "x");
        a.schedule(SimTime::from_secs(2), 3, "y");
        a.schedule(SimTime::from_secs(1), 9, "z");
        let mut b = Timeline::new();
        b.schedule(SimTime::from_secs(1), 9, "z");
        b.schedule(SimTime::from_secs(2), 3, "y");
        b.schedule(SimTime::from_secs(2), 7, "x");
        fn drain(mut t: Timeline<&'static str>) -> Vec<(SimTime, u64, &'static str)> {
            let mut out = Vec::new();
            while let Some(e) = t.pop() {
                out.push(e);
            }
            out
        }
        assert_eq!(drain(a), drain(b));
    }

    #[test]
    fn timeline_pop_due_respects_now() {
        let mut t = Timeline::new();
        t.schedule(SimTime::from_secs(4), 1, ());
        t.schedule(SimTime::from_secs(6), 2, ());
        assert!(t.pop_due(SimTime::from_secs(3)).is_none());
        assert_eq!(
            t.pop_due(SimTime::from_secs(4)),
            Some((SimTime::from_secs(4), 1, ()))
        );
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }

    #[test]
    fn timeline_next_before_is_strict() {
        let mut t = Timeline::new();
        t.schedule(SimTime::from_secs(5), 1, ());
        assert_eq!(
            t.next_before(SimTime::from_secs(6)),
            Some(SimTime::from_secs(5))
        );
        // The horizon itself is outside the window: an event *at* the end
        // of a charge window lands at the natural stage boundary.
        assert_eq!(t.next_before(SimTime::from_secs(5)), None);
        assert_eq!(
            Timeline::<()>::new().next_before(SimTime::from_secs(9)),
            None
        );
    }

    #[test]
    fn timeline_peek_does_not_remove() {
        let mut t = Timeline::new();
        t.schedule(SimTime::from_secs(2), 8, "later");
        t.schedule(SimTime::from_secs(1), 4, "first");
        assert_eq!(t.peek(), Some((SimTime::from_secs(1), 4, &"first")));
        assert_eq!(t.len(), 2);
        assert_eq!(t.pop(), Some((SimTime::from_secs(1), 4, "first")));
        assert_eq!(t.peek(), Some((SimTime::from_secs(2), 8, &"later")));
    }

    #[test]
    fn timeline_schedule_replaces_same_slot() {
        let mut t = Timeline::new();
        assert_eq!(t.schedule(SimTime::from_secs(1), 5, "old"), None);
        assert_eq!(t.schedule(SimTime::from_secs(1), 5, "new"), Some("old"));
        assert_eq!(t.pop(), Some((SimTime::from_secs(1), 5, "new")));
    }
}
