//! Stage-boundary fault matrix for the staged migration engine.
//!
//! For each faultable stage of the pipeline, a probe run measures the
//! stage's virtual-time window, a second identically-seeded run blankets
//! exactly that window with injected faults, and the test asserts the
//! engine aborts *at that stage*, rolls back to an intact home-side
//! state, and leaves the guest residue-free. Stages that never consult
//! the fault plan (preparation, reintegration) are covered by isolation
//! cases: blanketing their windows must not perturb the migration at
//! all. A final set of tests pins the engine's telemetry contract: every
//! `migration.stage.*` span corresponds to a declared stage, and every
//! public entry point routes through [`flux_core::engine::run`]
//! (observable as the `flux.engine.runs` counter).

mod common;

use flux_appfw::ActivityState;
use flux_core::{
    migrate, FleetConfig, FleetScheduler, FluxError, MigrationConfig, MigrationRequest,
    MigrationSpec, MigrationStage, RetryPolicy, StageFailure,
};
use flux_simcore::{FaultEvent, FaultKind, FaultPlan, SimDuration, SimTime};
use flux_telemetry::{stage_span_name, REPORT_STAGES, STAGE_SPAN_PREFIX};

const SEED: u64 = 7301;
const APP: &str = "WhatsApp";

/// Clean probe migration returning the `[start, end]` window of the named
/// span. Fault plans built from this window line up exactly with a second
/// run at the same seed, because the engine is deterministic and only the
/// blanketed stage consults the plan.
fn probe_span_window(cfg: &MigrationConfig, span: &str) -> (SimTime, SimTime) {
    let (mut world, home, guest, pkg) = common::staged(APP, SEED);
    migrate(
        &mut world,
        MigrationSpec::new(&pkg).between(home, guest).config(*cfg),
    )
    .expect("probe migration succeeds");
    let s = world
        .telemetry
        .spans()
        .iter()
        .find(|s| s.name == span)
        .unwrap_or_else(|| panic!("probe run emitted no `{span}` span"));
    (s.start, s.end.expect("probe span closed"))
}

/// A fault of `kind` every 50 ms across `[from, to + pad)`. The matrix
/// cases pad by a second so the tail of the stage cannot escape; the
/// isolation cases pad by zero so the blanket stays strictly inside the
/// probed window. Kernel stalls carry a duration over
/// [`flux_core::KERNEL_STALL_WATCHDOG`] so each one is fatal to the
/// charge window it lands in.
fn blanket(kind: FaultKind, from: SimTime, to: SimTime, pad: SimDuration) -> FaultPlan {
    let duration = match kind {
        FaultKind::KernelStall => SimDuration::from_secs(1),
        _ => SimDuration::ZERO,
    };
    let step = SimDuration::from_millis(50);
    let mut events = Vec::new();
    let mut at = from;
    let to = to + pad;
    while at < to {
        events.push(FaultEvent {
            at,
            kind,
            duration,
            magnitude: 1.0,
        });
        at += step;
    }
    FaultPlan::from_events(events)
}

/// Run a fail-fast migration under `plan` and assert it aborts at
/// `expected` with the full transactional-rollback invariants.
fn assert_aborts_at(plan: FaultPlan, expected: MigrationStage) {
    let (mut world, home, guest, pkg) = common::staged_faulty(APP, SEED, plan);

    let home_uid = world.device(home).unwrap().app_uid(&pkg).unwrap();
    let log_before = world
        .device(home)
        .unwrap()
        .records
        .log(home_uid)
        .cloned()
        .unwrap_or_default();

    let err = migrate(
        &mut world,
        MigrationSpec::new(&pkg)
            .between(home, guest)
            .retry(RetryPolicy::none()),
    )
    .expect_err("blanketed stage must abort the migration");
    match err {
        FluxError::Migration(StageFailure::FaultAborted {
            stage, attempts, ..
        }) => {
            assert_eq!(stage, expected, "abort attributed to the wrong stage");
            assert_eq!(attempts, 1, "fail-fast policy allows exactly one attempt");
        }
        other => panic!("expected a fault abort, got: {other}"),
    }

    // Home side: the app is back in the foreground with a live process
    // and a byte-identical record log.
    let home_dev = world.device(home).unwrap();
    let happ = home_dev.apps.get(&pkg).expect("app restored on home");
    assert_eq!(happ.top_state(), Some(ActivityState::Resumed));
    assert!(home_dev.kernel.process(happ.main_pid).is_ok());
    let log_after = home_dev.records.log(home_uid).cloned().unwrap_or_default();
    assert_eq!(log_after, log_before, "record log changed across rollback");

    // Guest side: no app, no staged image, no pre-copy residue.
    let guest_dev = world.device(guest).unwrap();
    assert!(!guest_dev.apps.contains_key(&pkg));
    assert!(!guest_dev
        .fs
        .exists(&format!("/data/flux/h/.migrate/{pkg}.image")));
    assert!(!guest_dev
        .fs
        .exists(&format!("/data/flux/h/.migrate/{pkg}.precopy")));
}

#[test]
fn kernel_stalls_in_the_checkpoint_window_abort_at_checkpoint() {
    let cfg = MigrationConfig::default();
    let (from, to) = probe_span_window(&cfg, &stage_span_name("checkpoint"));
    assert_aborts_at(
        blanket(FaultKind::KernelStall, from, to, SimDuration::from_secs(1)),
        MigrationStage::Checkpoint,
    );
}

#[test]
fn link_drops_in_the_transfer_window_abort_at_transfer() {
    let cfg = MigrationConfig::default();
    let (from, to) = probe_span_window(&cfg, &stage_span_name("transfer"));
    assert_aborts_at(
        blanket(FaultKind::LinkDrop, from, to, SimDuration::from_secs(1)),
        MigrationStage::Transfer,
    );
}

#[test]
fn kernel_stalls_in_the_restore_window_abort_at_restore() {
    let cfg = MigrationConfig::default();
    let (from, to) = probe_span_window(&cfg, &stage_span_name("restore"));
    assert_aborts_at(
        blanket(FaultKind::KernelStall, from, to, SimDuration::from_secs(1)),
        MigrationStage::Restore,
    );
}

/// Preparation and reintegration never consult the fault plan: freezing,
/// record-log sealing and replay are local CPU work with no radio or
/// checkpoint syscalls in the fault model. Blanketing their windows with
/// *both* fault kinds must leave the migration byte-identical to a clean
/// run.
#[test]
fn faults_outside_consulting_stages_do_not_perturb_the_migration() {
    let cfg = MigrationConfig::default();
    for stage in ["preparation", "reintegration"] {
        let (from, to) = probe_span_window(&cfg, &stage_span_name(stage));
        for kind in [FaultKind::KernelStall, FaultKind::LinkDrop] {
            // No pad: the blanket stays strictly inside the stage window
            // so it cannot leak into a consulting stage.
            let plan = blanket(kind, from, to, SimDuration::ZERO);
            let (mut world, home, guest, pkg) = common::staged_faulty(APP, SEED, plan);
            let report = migrate(&mut world, MigrationSpec::new(&pkg).between(home, guest))
                .expect("fault-isolated stage must not abort");
            assert_eq!(report.faults, 0, "{stage} consumed a fault it must ignore");
            assert_eq!(report.attempts, 1);
            assert!(world.device(guest).unwrap().apps.contains_key(&pkg));
        }
    }
}

/// Pre-copy is best effort: a faulted pre-dump round is abandoned, never
/// retried and never fatal on its own. Whatever the downstream outcome,
/// the engine must end in one of its two legal terminal states.
#[test]
fn faulted_precopy_is_abandoned_not_fatal() {
    let cfg = MigrationConfig {
        precopy: true,
        ..MigrationConfig::default()
    };
    let (mut probe, home, guest, pkg) = common::staged(APP, SEED);
    migrate(
        &mut probe,
        MigrationSpec::new(&pkg).between(home, guest).config(cfg),
    )
    .expect("probe succeeds");
    let span = probe
        .telemetry
        .spans()
        .iter()
        .find(|s| s.name == "migration.precopy")
        .expect("pre-copy probe emitted its span")
        .clone();

    let plan = blanket(
        FaultKind::LinkDrop,
        span.start,
        span.end.unwrap(),
        SimDuration::ZERO,
    );
    let (mut world, home, guest, pkg) = common::staged_faulty(APP, SEED, plan);
    let outcome = migrate(
        &mut world,
        MigrationSpec::new(&pkg).between(home, guest).config(cfg),
    );

    // The abandonment event must have fired — the blanket hit pre-copy.
    assert!(
        world
            .telemetry
            .instants()
            .iter()
            .any(|i| i.name == "migration.precopy.abandoned"),
        "blanketed pre-copy round was not abandoned"
    );
    match outcome {
        Ok(report) => {
            // Downstream stages survived (or retried) the blanket tail.
            assert!(report.faults > 0);
            assert!(world.device(guest).unwrap().apps.contains_key(&pkg));
        }
        Err(FluxError::Migration(StageFailure::FaultAborted { .. })) => {
            // The blanket tail exhausted the transfer retries: rollback
            // must still be residue-free.
            let guest_dev = world.device(guest).unwrap();
            assert!(!guest_dev.apps.contains_key(&pkg));
            assert!(!guest_dev
                .fs
                .exists(&format!("/data/flux/h/.migrate/{pkg}.precopy")));
            assert!(world.device(home).unwrap().apps.contains_key(&pkg));
        }
        Err(other) => panic!("unexpected terminal state: {other}"),
    }
}

/// Every `migration.stage.*` span the engine emits corresponds to a
/// declared stage, and a successful default migration emits exactly the
/// five report stages.
#[test]
fn emitted_stage_spans_match_the_declared_stages() {
    let (mut world, home, guest, pkg) = common::staged(APP, SEED);
    migrate(
        &mut world,
        MigrationSpec::new(&pkg)
            .between(home, guest)
            .config(MigrationConfig::pipelined()),
    )
    .expect("pipelined migration succeeds");

    let declared: Vec<String> = REPORT_STAGES.iter().map(|s| stage_span_name(s)).collect();
    let mut seen = Vec::new();
    for span in world.telemetry.spans() {
        if span.name.starts_with(STAGE_SPAN_PREFIX) {
            assert!(
                declared.contains(&span.name),
                "span `{}` does not correspond to a declared stage",
                span.name
            );
            seen.push(span.name.clone());
        }
    }
    for name in &declared {
        assert!(
            seen.contains(name),
            "declared stage `{name}` emitted no span"
        );
    }
}

/// Every public entry point — `migrate` under any `MigrationSpec` and
/// the fleet scheduler — executes through `engine::run`, observable as
/// one `flux.engine.runs` tick per migration.
#[test]
fn every_entry_point_runs_through_the_engine() {
    let engine_runs = |world: &mut flux_core::FluxWorld| {
        let now = world.clock.now();
        world.telemetry.finish(now);
        world.telemetry.metrics().counter("flux.engine.runs")
    };

    let (mut world, home, guest, pkg) = common::staged(APP, SEED);
    migrate(&mut world, MigrationSpec::new(&pkg).between(home, guest)).unwrap();
    assert_eq!(engine_runs(&mut world), 1);

    let (mut world, home, guest, pkg) = common::staged(APP, SEED);
    migrate(
        &mut world,
        MigrationSpec::new(&pkg)
            .between(home, guest)
            .config(MigrationConfig::pipelined()),
    )
    .unwrap();
    assert_eq!(engine_runs(&mut world), 1);

    let (mut world, home, guest, pkg) = common::staged(APP, SEED);
    migrate(
        &mut world,
        MigrationSpec::new(&pkg)
            .between(home, guest)
            .retry(RetryPolicy::default()),
    )
    .unwrap();
    assert_eq!(engine_runs(&mut world), 1);

    let (mut world, pairs) = common::fleet_world(&["WhatsApp", "Facebook"], SEED);
    let batch = pairs
        .iter()
        .enumerate()
        .map(|(i, (h, g, p))| MigrationRequest::new(i as u64 + 1, *h, *g, p))
        .collect();
    FleetScheduler::new(FleetConfig::default())
        .unwrap()
        .run(&mut world, batch)
        .unwrap();
    assert_eq!(
        engine_runs(&mut world),
        2,
        "one engine run per fleet flight"
    );

    // Even a refused migration (preflight) enters the engine first.
    let (mut world, home, guest, pkg) = common::staged(APP, SEED);
    assert!(migrate(
        &mut world,
        MigrationSpec::new("not.a.package").between(home, guest)
    )
    .is_err());
    migrate(&mut world, MigrationSpec::new(&pkg).between(home, guest)).unwrap();
    assert_eq!(engine_runs(&mut world), 2);
}
