//! Table 2: decorated services in Android — methods per interface and the
//! lines of Flux decorator code, regenerated from the embedded decorated
//! AIDL sources (and the hand-written SensorService rules).

use flux_bench::Table;
use flux_services::{table2, ServiceClass};

fn main() {
    println!("Table 2: Decorated services in Android\n");
    for (class, title) in [
        (ServiceClass::Hardware, "HARDWARE SERVICE"),
        (ServiceClass::Software, "SOFTWARE SERVICE"),
    ] {
        let mut t = Table::new(&[title, "METHODS", "LOC"]);
        for row in table2().iter().filter(|r| r.class == class) {
            t.row(vec![
                row.service.clone(),
                row.methods.to_string(),
                row.loc
                    .map(|n| n.to_string())
                    .unwrap_or_else(|| "TBD".into()),
            ]);
        }
        println!("{}", t.render());
    }
    println!("Method counts and decoration LOC are measured from the decorated");
    println!("AIDL sources in crates/services/aidl/ (SensorService: from the");
    println!("hand-written rules in flux-services::sensor_native).");
}
