//! The engine's slice vocabulary: the stage-level [`Slice`] schedule an
//! executed migration is cut into, the [`build_schedule`] cutter that
//! turns [`ExecProbe`](crate::probe::ExecProbe) windows into it, and the
//! [`SliceCursor`] the fleet scheduler walks to re-time those slices on
//! its timeline.
//!
//! This used to be split across `executor.rs` (the cutter) and `fleet.rs`
//! (a hand-rolled cursor inside `step_flight`); it now lives with the
//! engine, the one owner of slice semantics — the same boundaries the
//! driver yields at for mid-stage interrupt delivery.

use crate::probe::{RadioWindow, StageWindow};
use flux_simcore::{ByteSize, SimDuration, SimTime};

/// What one schedulable stretch of an executed migration occupies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SliceKind {
    /// Device-local work: holds the migration's devices, not the air.
    Cpu,
    /// A radio payload: `bytes` the serial transfer model priced at the
    /// slice's duration of air time. The scheduler admits it onto the
    /// medium, where contention may stretch it.
    Transfer {
        /// Payload bytes delivered in this window.
        bytes: ByteSize,
    },
}

/// One stage-level stretch of an executed migration — the unit the fleet
/// scheduler re-times. Consecutive slices run back to back; `Transfer`
/// slices contend for the air individually (a pre-copy round and another
/// request's freeze-phase residue genuinely interleave on the medium).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Slice {
    /// The engine stage the stretch belongs to (`Stage::name`, or a
    /// driver label like `"backoff"`/`"rollback"`; `""` between stages).
    pub stage: &'static str,
    /// What the stretch occupies.
    pub kind: SliceKind,
    /// Isolated duration (for `Transfer` slices, the serial air time —
    /// medium contention not yet applied).
    pub dur: SimDuration,
}

/// Cuts `[start, start + wall]` into [`Slice`]s at every stage and radio
/// window boundary: stretches inside a radio window become `Transfer`
/// slices carrying that window's payload, everything else is `Cpu`, and
/// each slice is labeled with the stage that owned the clock there.
///
/// The builder checks — rather than trusts — the probe invariants: radio
/// windows must be chronological, non-overlapping and inside the wall.
/// Every violation is counted and the offending window clamped, so the
/// returned schedule always tiles the wall exactly; callers surface the
/// count (`flux.fleet.accounting_violations`) instead of masking it.
pub(crate) fn build_schedule(
    stages: &[StageWindow],
    radios: &[RadioWindow],
    start: SimTime,
    wall: SimDuration,
) -> (Vec<Slice>, u32) {
    let end = start + wall;
    let mut violations = 0u32;
    let label_at = |t: SimTime| -> &'static str {
        stages
            .iter()
            .find(|w| w.from <= t && t < w.to)
            .map(|w| w.stage)
            .unwrap_or("")
    };
    // Emits the CPU stretch `[from, to)`, split at stage boundaries so a
    // slice never spans two stages (the scheduler brackets the transfer
    // stage by its labeled slices).
    let emit_cpu = |slices: &mut Vec<Slice>, from: SimTime, to: SimTime| {
        let mut at = from;
        while at < to {
            let mut next = to;
            for w in stages {
                for b in [w.from, w.to] {
                    if b > at && b < next {
                        next = b;
                    }
                }
            }
            slices.push(Slice {
                stage: label_at(at),
                kind: SliceKind::Cpu,
                dur: next.since(at),
            });
            at = next;
        }
    };
    let mut slices = Vec::new();
    let mut cursor = start;
    for r in radios {
        let (mut from, mut to) = (r.from, r.from + r.duration);
        if from < cursor || to > end {
            violations += 1;
            from = from.max(cursor).min(end);
            to = to.max(from).min(end);
        }
        if to <= from {
            continue; // clamped away entirely
        }
        emit_cpu(&mut slices, cursor, from);
        // A window that delivered nothing (handshake drop) held the
        // devices but never got a payload onto the air: schedule it as
        // CPU time rather than admitting a zero-byte flow.
        let kind = if r.bytes.as_u64() > 0 {
            SliceKind::Transfer { bytes: r.bytes }
        } else {
            SliceKind::Cpu
        };
        slices.push(Slice {
            stage: label_at(from),
            kind,
            dur: to.since(from),
        });
        cursor = to;
    }
    emit_cpu(&mut slices, cursor, end);
    debug_assert_eq!(
        slices
            .iter()
            .map(|s| s.dur)
            .fold(SimDuration::ZERO, |a, d| a + d),
        wall,
        "slice schedule must tile the wall exactly"
    );
    (slices, violations)
}

/// What the fleet scheduler should do for the cursor's current position.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArmAction {
    /// Hold the migration's devices for `dur`, then step the cursor.
    Cpu {
        /// Isolated duration of the slice.
        dur: SimDuration,
    },
    /// Admit `bytes` onto the medium, priced at an isolated air time of
    /// `dur` (contention may stretch it).
    Transfer {
        /// Payload bytes of the slice.
        bytes: ByteSize,
        /// Isolated air time of the slice.
        dur: SimDuration,
    },
    /// The schedule has drained; the flight is done.
    Drained,
}

/// A cursor over an executed migration's [`Slice`] schedule.
///
/// The scheduler re-times slices one at a time on the fleet timeline;
/// the cursor owns the walk — zero-duration skips, the position, and the
/// first/last-transfer bracket (`transfer_start`/`transfer_end`, the
/// flight record's transfer phase) — so `fleet.rs::step_flight` carries
/// no slice bookkeeping of its own.
#[derive(Debug)]
pub struct SliceCursor {
    slices: Vec<Slice>,
    pos: usize,
    first_transfer: Option<usize>,
    last_transfer: Option<usize>,
    transfer_start: Option<SimTime>,
    transfer_end: Option<SimTime>,
}

impl SliceCursor {
    /// A cursor at the start of `slices`.
    pub fn new(slices: Vec<Slice>) -> Self {
        let first_transfer = slices.iter().position(|s| s.stage == "transfer");
        let last_transfer = slices.iter().rposition(|s| s.stage == "transfer");
        Self {
            slices,
            pos: 0,
            first_transfer,
            last_transfer,
            transfer_start: None,
            transfer_end: None,
        }
    }

    /// Advances past zero-duration slices (marking the transfer bracket
    /// at `now` as it crosses it) and reports what to arm for the first
    /// armable slice — or [`ArmAction::Drained`] when none remains.
    pub fn arm(&mut self, now: SimTime) -> ArmAction {
        while let Some(slice) = self.slices.get(self.pos) {
            if self.first_transfer == Some(self.pos) && self.transfer_start.is_none() {
                self.transfer_start = Some(now);
            }
            if slice.dur == SimDuration::ZERO {
                if self.last_transfer == Some(self.pos) {
                    self.transfer_end = Some(now);
                }
                self.pos += 1;
                continue;
            }
            return match slice.kind {
                SliceKind::Cpu => ArmAction::Cpu { dur: slice.dur },
                SliceKind::Transfer { bytes } => ArmAction::Transfer {
                    bytes,
                    dur: slice.dur,
                },
            };
        }
        ArmAction::Drained
    }

    /// Steps past the just-completed slice, marking the transfer bracket.
    /// Returns `false` when the cursor had already drained — the flight
    /// is finished.
    pub fn step(&mut self, now: SimTime) -> bool {
        if self.pos >= self.slices.len() {
            return false;
        }
        if self.last_transfer == Some(self.pos) {
            self.transfer_end = Some(now);
        }
        self.pos += 1;
        true
    }

    /// When the first transfer-stage slice was armed, if it has been.
    pub fn transfer_start(&self) -> Option<SimTime> {
        self.transfer_start
    }

    /// When the last transfer-stage slice completed, if it has.
    pub fn transfer_end(&self) -> Option<SimTime> {
        self.transfer_end
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: u64) -> SimTime {
        SimTime::from_secs(secs)
    }

    fn stage_w(stage: &'static str, from: u64, to: u64) -> StageWindow {
        StageWindow {
            stage,
            from: t(from),
            to: t(to),
        }
    }

    fn radio_w(from: u64, dur: u64, mib: u64) -> RadioWindow {
        RadioWindow {
            from: t(from),
            duration: SimDuration::from_secs(dur),
            bytes: ByteSize::from_mib(mib),
        }
    }

    #[test]
    fn schedule_tiles_the_wall_and_labels_stages() {
        // precopy [0,4) with a radio round [1,3); transfer [5,9) with its
        // verify head [5,6) and radio [6,9); a bare gap [4,5).
        let stages = vec![stage_w("precopy", 0, 4), stage_w("transfer", 5, 9)];
        let radios = vec![radio_w(1, 2, 8), radio_w(6, 3, 64)];
        let (slices, violations) =
            build_schedule(&stages, &radios, t(0), SimDuration::from_secs(9));
        assert_eq!(violations, 0);
        let shape: Vec<(&str, bool, u64)> = slices
            .iter()
            .map(|s| {
                (
                    s.stage,
                    matches!(s.kind, SliceKind::Transfer { .. }),
                    s.dur.as_nanos() / 1_000_000_000,
                )
            })
            .collect();
        assert_eq!(
            shape,
            vec![
                ("precopy", false, 1),
                ("precopy", true, 2),
                ("precopy", false, 1),
                ("", false, 1),
                ("transfer", false, 1),
                ("transfer", true, 3),
            ]
        );
        let total = slices
            .iter()
            .map(|s| s.dur)
            .fold(SimDuration::ZERO, |a, d| a + d);
        assert_eq!(total, SimDuration::from_secs(9));
    }

    #[test]
    fn zero_byte_radio_windows_become_cpu_slices() {
        // A handshake drop held the devices but shipped nothing: it must
        // not become a zero-byte medium flow.
        let stages = vec![stage_w("transfer", 0, 3)];
        let radios = vec![radio_w(1, 1, 0)];
        let (slices, violations) =
            build_schedule(&stages, &radios, t(0), SimDuration::from_secs(3));
        assert_eq!(violations, 0);
        assert!(slices.iter().all(|s| matches!(s.kind, SliceKind::Cpu)));
    }

    #[test]
    fn escaping_radio_windows_are_counted_not_masked() {
        // Regression for the silent `pre = wall.saturating_sub(transfer +
        // post)` clamp: a probe window past the measured wall used to
        // vanish into a zero pre-phase. Now it is clamped *and counted*.
        let stages = vec![stage_w("transfer", 0, 4)];
        let radios = vec![radio_w(2, 10, 64)]; // escapes a 4 s wall
        let (slices, violations) =
            build_schedule(&stages, &radios, t(0), SimDuration::from_secs(4));
        assert_eq!(violations, 1);
        let total = slices
            .iter()
            .map(|s| s.dur)
            .fold(SimDuration::ZERO, |a, d| a + d);
        assert_eq!(total, SimDuration::from_secs(4), "still tiles the wall");
        // Overlapping windows are the other corruption shape.
        let radios = vec![radio_w(0, 3, 8), radio_w(2, 1, 8)];
        let (_, violations) = build_schedule(&stages, &radios, t(0), SimDuration::from_secs(4));
        assert_eq!(violations, 1);
    }

    #[test]
    fn empty_probe_yields_one_cpu_slice_or_nothing() {
        let (slices, v) = build_schedule(&[], &[], t(0), SimDuration::from_secs(2));
        assert_eq!(v, 0);
        assert_eq!(
            slices,
            vec![Slice {
                stage: "",
                kind: SliceKind::Cpu,
                dur: SimDuration::from_secs(2)
            }]
        );
        let (slices, v) = build_schedule(&[], &[], t(0), SimDuration::ZERO);
        assert_eq!(v, 0);
        assert!(slices.is_empty());
    }

    #[test]
    fn cursor_walks_slices_and_brackets_the_transfer_phase() {
        let mib = ByteSize::from_mib(8);
        let slices = vec![
            Slice {
                stage: "preparation",
                kind: SliceKind::Cpu,
                dur: SimDuration::from_secs(1),
            },
            Slice {
                stage: "transfer",
                kind: SliceKind::Cpu,
                dur: SimDuration::ZERO,
            },
            Slice {
                stage: "transfer",
                kind: SliceKind::Transfer { bytes: mib },
                dur: SimDuration::from_secs(2),
            },
            Slice {
                stage: "restore",
                kind: SliceKind::Cpu,
                dur: SimDuration::from_secs(1),
            },
        ];
        let mut cursor = SliceCursor::new(slices);
        assert_eq!(
            cursor.arm(t(10)),
            ArmAction::Cpu {
                dur: SimDuration::from_secs(1)
            }
        );
        assert!(cursor.step(t(11)));
        // The zero-duration verify head is skipped in the same arm call
        // that admits the radio slice; the bracket opens there.
        assert_eq!(
            cursor.arm(t(11)),
            ArmAction::Transfer {
                bytes: mib,
                dur: SimDuration::from_secs(2)
            }
        );
        assert_eq!(cursor.transfer_start(), Some(t(11)));
        assert_eq!(cursor.transfer_end(), None);
        assert!(cursor.step(t(13)));
        assert_eq!(cursor.transfer_end(), Some(t(13)));
        assert_eq!(
            cursor.arm(t(13)),
            ArmAction::Cpu {
                dur: SimDuration::from_secs(1)
            }
        );
        assert!(cursor.step(t(14)));
        assert_eq!(cursor.arm(t(14)), ArmAction::Drained);
        assert!(!cursor.step(t(14)), "drained cursor reports finished");
    }

    #[test]
    fn empty_cursor_drains_immediately() {
        let mut cursor = SliceCursor::new(Vec::new());
        assert_eq!(cursor.arm(t(0)), ArmAction::Drained);
        assert!(!cursor.step(t(0)));
        assert_eq!(cursor.transfer_start(), None);
        assert_eq!(cursor.transfer_end(), None);
    }
}
