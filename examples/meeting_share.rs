//! Collaborative meeting: use case (4) from §1 of the paper.
//!
//! An app is passed around a meeting — owner's phone to one attendee's
//! tablet, then on to a second tablet, then back to the owner — with its
//! full state each hop. Each hop records on one device and replays on the
//! next; migrating on from a guest works because replay rebuilds the
//! record log as a side effect.
//!
//! Run with: `cargo run --example meeting_share`

use flux_binder::Parcel;
use flux_core::{migrate, pair, MigrationSpec, WorldBuilder};
use flux_device::DeviceProfile;
use flux_services::svc::clipboard::ClipboardService;
use flux_workloads::spec;

fn main() {
    let app = spec("Pinterest").expect("Pinterest is in Table 3");
    let (mut world, ids) = WorldBuilder::new()
        .seed(99)
        .device("owner-phone", DeviceProfile::nexus4())
        .device("alice-tablet", DeviceProfile::nexus7_2013())
        .device("bob-tablet", DeviceProfile::nexus7_2012())
        .app(0, app.clone())
        .build()
        .expect("world builds");
    let (owner, alice, bob) = (ids[0], ids[1], ids[2]);
    world
        .run_script(owner, &app.package, &app.actions.clone())
        .expect("owner browses");

    // Everyone in the meeting pairs with everyone (as in §4's setup).
    pair(&mut world, owner, alice).expect("owner->alice pairing");

    // Owner annotates a shared board note, then passes the app to Alice.
    world
        .app_call(
            owner,
            &app.package,
            "clipboard",
            "setPrimaryClip",
            Parcel::new().with_blob(b"owner: see board 3".to_vec()),
        )
        .expect("owner note");
    let hop1 = migrate(
        &mut world,
        MigrationSpec::new(&app.package).between(owner, alice),
    )
    .expect("hop to alice");
    println!("owner-phone -> alice-tablet: {}", hop1.stages.total());

    // Alice adds her note and passes it on to Bob. The hop out of Alice's
    // device works because replay rebuilt the record log there.
    pair(&mut world, alice, bob).expect("alice->bob pairing");
    world
        .app_call(
            alice,
            &app.package,
            "clipboard",
            "setPrimaryClip",
            Parcel::new().with_blob(b"alice: budget approved".to_vec()),
        )
        .expect("alice note");
    let hop2 = migrate(
        &mut world,
        MigrationSpec::new(&app.package).between(alice, bob),
    )
    .expect("hop to bob");
    println!("alice-tablet -> bob-tablet: {}", hop2.stages.total());

    // Bob's device sees Alice's latest note — the clipboard followed the
    // app, and only the *latest* clip was replayed (the @drop rule erased
    // the owner's earlier one from the log).
    let clip = world
        .device(bob)
        .unwrap()
        .host
        .service::<ClipboardService>("clipboard")
        .unwrap()
        .primary_clip()
        .map(|b| String::from_utf8_lossy(b).into_owned());
    println!("clipboard on bob-tablet: {clip:?}");
    assert_eq!(clip.as_deref(), Some("alice: budget approved"));

    // And back to the owner to wrap up the meeting.
    pair(&mut world, bob, owner).expect("bob->owner pairing");
    let hop3 = migrate(
        &mut world,
        MigrationSpec::new(&app.package).between(bob, owner),
    )
    .expect("hop home");
    println!("bob-tablet -> owner-phone: {}", hop3.stages.total());
    assert!(world.device(owner).unwrap().apps.contains_key(&app.package));
    println!(
        "\nThree hops, one app instance, no cloud. Total meeting overhead: {}",
        hop1.stages.total() + hop2.stages.total() + hop3.stages.total()
    );
}
