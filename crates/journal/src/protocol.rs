//! The observer/command line protocol `flux-served` speaks.
//!
//! Plain `std` text over any byte stream (the binary serves it on TCP and
//! stdin): one command per line, one response per command. Single-line
//! responses start `OK ` or `ERR `; bulk responses are framed by byte
//! count —
//!
//! ```text
//! > REPORT 0
//! < OK 4211
//! < {"flights":[...]}          (exactly 4211 bytes, then a newline)
//! ```
//!
//! so a client never has to guess where a JSON blob ends. The protocol
//! layer is a pure function from `(service, line)` to [`Response`], which
//! keeps it testable without sockets.
//!
//! Commands:
//!
//! | command | effect |
//! |---|---|
//! | `STATUS` | one-line counters: pending, acked, batches, clock, events |
//! | `SUBMIT <id> <pair> <package> [priority]` | write-ahead ack a request |
//! | `STEP` | admit all pending requests as one batch and execute it |
//! | `REPORT <seq>` | bulk: the batch's `FleetReport` JSON |
//! | `TRACE <seq>` | bulk: the batch's `chrome://tracing` export |
//! | `TELEMETRY <seq>` | bulk: the batch's telemetry JSON export |
//! | `STATE` | bulk: the full durable state (the byte-identity probe) |
//! | `QUIT` | close this connection |

use crate::service::{ServiceCore, ServiceError, SubmitAck};
use crate::RequestSpec;
use std::io::{self, Write};

/// One protocol response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// A single `OK ...` or `ERR ...` line.
    Line(String),
    /// `OK <len>` followed by exactly `len` body bytes and a newline.
    Blob(Vec<u8>),
    /// `OK bye`; the server should close the connection afterwards.
    Quit,
}

impl Response {
    fn err(msg: impl std::fmt::Display) -> Self {
        Response::Line(format!("ERR {msg}"))
    }

    /// Whether this response asks the server to hang up.
    pub fn is_quit(&self) -> bool {
        matches!(self, Response::Quit)
    }

    /// Writes the response in wire form.
    pub fn write_to(&self, out: &mut impl Write) -> io::Result<()> {
        match self {
            Response::Line(line) => writeln!(out, "{line}"),
            Response::Blob(body) => {
                writeln!(out, "OK {}", body.len())?;
                out.write_all(body)?;
                writeln!(out)
            }
            Response::Quit => writeln!(out, "OK bye"),
        }
    }
}

fn batch_blob(
    core: &ServiceCore,
    arg: Option<&str>,
    pick: impl Fn(&crate::BatchRecord) -> Vec<u8>,
) -> Response {
    let Some(seq) = arg.and_then(|a| a.parse::<u64>().ok()) else {
        return Response::err("expected a batch sequence number");
    };
    match core.batch(seq) {
        Some(record) => Response::Blob(pick(record)),
        None => Response::err(format!("no batch {seq}")),
    }
}

/// Executes one protocol line against the service.
pub fn handle_line(core: &mut ServiceCore, line: &str) -> Response {
    let mut words = line.split_whitespace();
    let Some(cmd) = words.next() else {
        return Response::err("empty command");
    };
    let args: Vec<&str> = words.collect();
    match (cmd.to_ascii_uppercase().as_str(), args.as_slice()) {
        ("STATUS", []) => Response::Line(format!(
            "OK pending={} acked={} batches={} next_batch={} clock_ns={} events={}",
            core.pending_ids().len(),
            core.acked_count(),
            core.batches().len(),
            core.next_batch(),
            core.service_clock().as_nanos(),
            core.journaled_events(),
        )),
        ("SUBMIT", [id, pair, package]) | ("SUBMIT", [id, pair, package, _]) => {
            let (Ok(id), Ok(pair)) = (id.parse::<u64>(), pair.parse::<u64>()) else {
                return Response::err("SUBMIT <id> <pair> <package> [priority]");
            };
            let priority = match args.get(3) {
                Some(p) => match p.parse::<u8>() {
                    Ok(p) => p,
                    Err(_) => return Response::err("priority must be 0-255"),
                },
                None => 0,
            };
            let req = RequestSpec {
                id,
                pair,
                package: (*package).to_owned(),
                priority,
            };
            match core.submit(req) {
                Ok(SubmitAck::Acked) => Response::Line("OK acked".into()),
                Ok(SubmitAck::Duplicate) => Response::Line("OK duplicate".into()),
                Err(e) => Response::err(e),
            }
        }
        ("STEP", []) => match core.step_batch() {
            Ok(Some(record)) => Response::Line(format!(
                "OK batch {} completed={} rolled_back={} refused={}",
                record.seq,
                record.report.completed,
                record.report.rolled_back,
                record.report.refused,
            )),
            Ok(None) => Response::Line("OK idle".into()),
            Err(e @ ServiceError::Invalid(_)) => Response::err(e),
            Err(e) => Response::err(e),
        },
        ("REPORT", [_]) => batch_blob(core, args.first().copied(), |r| {
            serde::to_json(&r.report).into_bytes()
        }),
        ("TRACE", [_]) => batch_blob(core, args.first().copied(), |r| {
            r.chrome_trace.clone().into_bytes()
        }),
        ("TELEMETRY", [_]) => batch_blob(core, args.first().copied(), |r| {
            r.telemetry_json.clone().into_bytes()
        }),
        ("STATE", []) => Response::Blob(core.state_json().into_bytes()),
        ("QUIT", []) => Response::Quit,
        _ => Response::err(format!("unknown or malformed command `{line}`")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::journal::JournalConfig;
    use crate::{ScenarioSpec, ServiceConfig};

    fn svc(tag: &str) -> (ServiceCore, std::path::PathBuf) {
        let root =
            std::env::temp_dir().join(format!("flux-protocol-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        let spec = ScenarioSpec {
            seed: 0xAB,
            pairs: 1,
            scripted: false,
            max_in_flight: 1,
        };
        let cfg = ServiceConfig {
            snapshot_every: 0,
            journal: JournalConfig {
                segment_bytes: 1 << 20,
                sync_on_append: false,
            },
        };
        (ServiceCore::open(&root, spec, cfg).unwrap(), root)
    }

    #[test]
    fn full_session_flows() {
        let (mut core, root) = svc("session");
        assert_eq!(
            handle_line(&mut core, "SUBMIT 1 0 WhatsApp"),
            Response::Line("OK acked".into())
        );
        assert_eq!(
            handle_line(&mut core, "submit 1 0 WhatsApp"),
            Response::Line("OK duplicate".into())
        );
        let step = handle_line(&mut core, "STEP");
        assert!(matches!(&step, Response::Line(l) if l.starts_with("OK batch 0")));
        assert_eq!(
            handle_line(&mut core, "STEP"),
            Response::Line("OK idle".into())
        );
        let status = handle_line(&mut core, "STATUS");
        assert!(matches!(&status, Response::Line(l) if l.contains("batches=1")));
        let report = handle_line(&mut core, "REPORT 0");
        assert!(matches!(&report, Response::Blob(b) if b.starts_with(b"{\"flights\"")));
        assert!(matches!(
            handle_line(&mut core, "TRACE 0"),
            Response::Blob(_)
        ));
        assert!(matches!(
            handle_line(&mut core, "TELEMETRY 0"),
            Response::Blob(_)
        ));
        assert!(matches!(handle_line(&mut core, "STATE"), Response::Blob(_)));
        assert!(handle_line(&mut core, "QUIT").is_quit());
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn malformed_commands_are_errors_not_panics() {
        let (mut core, root) = svc("malformed");
        for bad in [
            "",
            "NOPE",
            "SUBMIT",
            "SUBMIT x y z",
            "SUBMIT 1 0 WhatsApp 900",
            "REPORT notanumber",
            "REPORT 7",
            "STEP now",
        ] {
            let resp = handle_line(&mut core, bad);
            assert!(
                matches!(&resp, Response::Line(l) if l.starts_with("ERR ")),
                "{bad:?} should be an ERR, got {resp:?}"
            );
        }
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn blob_wire_format_is_length_prefixed() {
        let (mut core, root) = svc("wire");
        handle_line(&mut core, "SUBMIT 1 0 WhatsApp");
        handle_line(&mut core, "STEP");
        let resp = handle_line(&mut core, "REPORT 0");
        let mut out = Vec::new();
        resp.write_to(&mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        let (header, rest) = text.split_once('\n').unwrap();
        let len: usize = header.strip_prefix("OK ").unwrap().parse().unwrap();
        assert_eq!(rest.len(), len + 1, "body plus trailing newline");
        std::fs::remove_dir_all(&root).unwrap();
    }
}
