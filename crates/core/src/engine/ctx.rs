//! What a stage sees: immutable migration facts (`MigCtx`), mutable
//! cross-attempt progress (`Progress`) and the borrow bundle threading
//! them plus the world, fault plan and telemetry into a stage
//! (`StageCtx`).

use crate::cria::FluxImage;
use crate::image_cache;
use crate::migration::{
    MigrationConfig, MigrationStage, StageTimes, TransferLedger, KERNEL_STALL_WATCHDOG,
};
use crate::replay::ReplayStats;
use crate::world::{fnv, DeviceId, FluxWorld, WorldError};
use flux_device::DeviceProfile;
use flux_kernel::ProcessImage;
use flux_net::DEFAULT_CHUNK;
use flux_simcore::{ByteSize, CostModel, FaultPlan, SimDuration, SimTime, TraceKind};
use flux_telemetry::LaneId;
use flux_workloads::AppSpec;

use super::failure::StageFailure;
use super::interrupt::InterruptSource;
use super::transfer::InflightTransfer;

/// Immutable facts about the migration, gathered once up front.
pub(crate) struct MigCtx {
    pub(crate) home: DeviceId,
    pub(crate) guest: DeviceId,
    pub(crate) package: String,
    pub(crate) home_name: String,
    pub(crate) guest_name: String,
    pub(crate) home_profile: DeviceProfile,
    pub(crate) guest_profile: DeviceProfile,
    pub(crate) home_cost: CostModel,
    pub(crate) guest_cost: CostModel,
    pub(crate) spec: AppSpec,
    /// Where partially transferred image chunks are staged on the guest.
    pub(crate) staged_path: String,
    /// Where pre-copy-streamed pages accumulate on the guest.
    pub(crate) precopy_path: String,
    /// Root of the guest-side pairing directory (cache lives under it).
    pub(crate) pairing_root: String,
    /// Telemetry lane of the home device.
    pub(crate) home_lane: LaneId,
    /// Telemetry lane of the guest device.
    pub(crate) guest_lane: LaneId,
    /// Feature switches for this migration.
    pub(crate) cfg: MigrationConfig,
}

impl MigCtx {
    /// Gathers the facts. Runs after preflight, so the lookups cannot fail
    /// for any world preflight admitted; the error paths mirror
    /// preflight's refusals regardless.
    pub(crate) fn gather(
        world: &FluxWorld,
        home: DeviceId,
        guest: DeviceId,
        package: &str,
        cfg: &MigrationConfig,
    ) -> Result<Self, StageFailure> {
        let pairing_root = world
            .device(guest)?
            .pairings
            .get(&home.0)
            .map(|p| p.root.clone())
            .ok_or(StageFailure::NotPaired)?;
        Ok(Self {
            home,
            guest,
            package: package.to_owned(),
            home_name: world.device(home)?.name.clone(),
            guest_name: world.device(guest)?.name.clone(),
            home_profile: world.device(home)?.profile.clone(),
            guest_profile: world.device(guest)?.profile.clone(),
            home_cost: world.device(home)?.cost.clone(),
            guest_cost: world.device(guest)?.cost.clone(),
            spec: world
                .device(home)?
                .specs
                .get(package)
                .cloned()
                .ok_or_else(|| StageFailure::NoSuchApp(package.to_owned()))?,
            staged_path: format!("{pairing_root}/.migrate/{package}.image"),
            precopy_path: format!("{pairing_root}/.migrate/{package}.precopy"),
            pairing_root,
            home_lane: world.device(home)?.lane,
            guest_lane: world.device(guest)?.lane,
            cfg: *cfg,
        })
    }
}

/// Mutable progress carried across attempts: completed stages are not
/// redone, delivered chunks are not re-sent.
#[derive(Default)]
pub(crate) struct Progress {
    pub(crate) precopy_done: bool,
    /// The last pre-dump fully streamed to the guest; the final image
    /// ships only its [`ProcessImage::dirty_delta`] against this.
    pub(crate) precopy_base: Option<ProcessImage>,
    pub(crate) precopy_streamed: ByteSize,
    /// The preparation stage's first slice ran: the app is backgrounded,
    /// trimmed and GL-unloaded, but its save point has not fired yet. A
    /// kill delivered in this window resets the flag — the relaunched
    /// process is simply quiesced again (nothing had shipped).
    pub(crate) prep_quiesced: bool,
    pub(crate) prep_done: bool,
    pub(crate) image: Option<FluxImage>,
    /// Compressed bytes the transfer stage must still ship (set once the
    /// checkpoint exists when pre-copy and/or the cache reduced the
    /// payload; `None` means the full compressed image).
    pub(crate) image_to_ship: Option<ByteSize>,
    pub(crate) cache_checked: bool,
    pub(crate) cache_hit: ByteSize,
    /// Cache misses to insert into the guest cache once delivered.
    pub(crate) cache_missed: Vec<image_cache::CacheChunk>,
    /// Compression cost deferred by the pipeline from the checkpoint
    /// stage into the transfer stage's fused window.
    pub(crate) compress_pending: SimDuration,
    pub(crate) delivered_chunks: usize,
    /// The serial transfer attempt currently draining its priced radio
    /// window slice by slice (so interrupts can land between chunks).
    pub(crate) transfer_inflight: Option<InflightTransfer>,
    pub(crate) transfer_done: bool,
    pub(crate) data_delta: ByteSize,
    pub(crate) restore_done: bool,
    pub(crate) dropped_connections: Vec<String>,
    pub(crate) guest_inserted: bool,
    /// Reintegration outputs, set by the replay-warmup stage on success.
    pub(crate) replay: Option<ReplayStats>,
    pub(crate) redrawn: usize,
    /// A stage's own busy accounting for the attempt just run, when it
    /// differs from the wall span of `run()` (the pipelined transfer hides
    /// part of its window). Taken by the driver after each stage.
    pub(crate) busy_override: Option<SimDuration>,
    pub(crate) times: StageTimes,
    pub(crate) attempts: u32,
    pub(crate) faults: u32,
    pub(crate) backoff: SimDuration,
}

impl Progress {
    /// The byte ledger as currently known (image fixed at checkpoint, data
    /// delta accumulated across verification syncs).
    pub(crate) fn ledger(&self) -> TransferLedger {
        let image = self.image.as_ref().expect("ledger needs a checkpoint");
        TransferLedger {
            image_raw: image.raw_bytes(),
            // Pre-copy and the image cache both shrink the frozen-window
            // ship; `image_to_ship` carries the discounted figure.
            image_compressed: self
                .image_to_ship
                .unwrap_or_else(|| image.compressed_bytes()),
            log_compressed: image.compressed_log_bytes(),
            data_delta: self.data_delta,
            precopy_streamed: self.precopy_streamed,
            cache_hit: self.cache_hit,
        }
    }
}

/// Everything a [`Stage`](super::Stage) runs against: the world (clock,
/// devices, radio, telemetry), the gathered facts, the fault plan pinned
/// at admission, and the cross-attempt progress.
pub struct StageCtx<'a> {
    pub(crate) world: &'a mut FluxWorld,
    pub(crate) mig: &'a MigCtx,
    pub(crate) plan: &'a FaultPlan,
    pub(crate) prog: &'a mut Progress,
    /// Mid-stage lifecycle interrupts: the driver arms and delivers them
    /// at slice boundaries; resumable stages only *query* the next due
    /// instant to know where to cut a window.
    pub(crate) interrupts: &'a mut InterruptSource,
}

impl<'a> StageCtx<'a> {
    pub(crate) fn new(
        world: &'a mut FluxWorld,
        mig: &'a MigCtx,
        plan: &'a FaultPlan,
        prog: &'a mut Progress,
        interrupts: &'a mut InterruptSource,
    ) -> Self {
        Self {
            world,
            mig,
            plan,
            prog,
            interrupts,
        }
    }

    /// Charges `cost` to the clock, plus any kernel stalls scheduled
    /// inside the charge window. Returns a stage failure if a stall trips
    /// the watchdog.
    pub(crate) fn charge_with_stalls(
        &mut self,
        cost: SimDuration,
        stage: MigrationStage,
        lane: LaneId,
    ) -> Option<StageFailure> {
        let start = self.world.clock.now();
        self.world.clock.charge(cost);
        let stalls: Vec<_> = self.plan.stalls_in(start, start + cost).cloned().collect();
        let mut abort: Option<SimDuration> = None;
        for stall in &stalls {
            self.world.clock.charge(stall.duration);
            self.prog.faults += 1;
            self.world.telemetry.instant(
                lane,
                TraceKind::Fault,
                "kernel.fault",
                self.world.clock.now(),
                format!("stall of {} during {stage}", stall.duration),
            );
            if stall.duration >= KERNEL_STALL_WATCHDOG && abort.is_none() {
                abort = Some(stall.duration);
            }
        }
        abort.map(|d| StageFailure::FaultAborted {
            stage,
            attempts: 0,
            detail: format!(
                "kernel stall of {d} tripped the {} watchdog",
                KERNEL_STALL_WATCHDOG
            ),
        })
    }

    /// Splits a lump-charged CRIU window `[start, start + total]` into
    /// per-driver sub-spans (`<prefix>.mem`, `<prefix>.fds`, ...)
    /// proportional to `weights`. Integer arithmetic; the last part
    /// absorbs the rounding remainder so the parts sum exactly to `total`.
    pub(crate) fn record_criu_parts(
        &mut self,
        lane: LaneId,
        prefix: &str,
        start: SimTime,
        total: SimDuration,
        weights: &[(&'static str, u64)],
    ) {
        if !self.world.telemetry.is_enabled() || weights.is_empty() {
            return;
        }
        let weight_sum: u64 = weights.iter().map(|(_, w)| *w).sum::<u64>().max(1);
        let total_ns = total.as_nanos();
        let mut cursor = start;
        let mut spent = 0u64;
        for (i, (name, w)) in weights.iter().enumerate() {
            let part_ns = if i == weights.len() - 1 {
                total_ns - spent
            } else {
                total_ns * w / weight_sum
            };
            spent += part_ns;
            let end = cursor + SimDuration::from_nanos(part_ns);
            self.world
                .telemetry
                .record_complete(lane, &format!("{prefix}.{name}"), cursor, end);
            cursor = end;
        }
    }

    /// Accounts a cache partition to the `flux.cache.*` counters.
    pub(crate) fn record_cache_counters(&mut self, p: &image_cache::CachePartition) {
        self.world
            .telemetry
            .counter_add("flux.cache.hits", p.hits as u64);
        self.world
            .telemetry
            .counter_add("flux.cache.misses", p.misses as u64);
        self.world
            .telemetry
            .counter_add("flux.cache.bytes_saved", p.hit_bytes.as_u64());
    }

    /// Inserts any pending cache misses (now delivered to the guest) into
    /// the content-addressed cache, counting the insertions.
    pub(crate) fn insert_cache_misses(&mut self) -> Result<(), WorldError> {
        if self.prog.cache_missed.is_empty() {
            return Ok(());
        }
        let missed = std::mem::take(&mut self.prog.cache_missed);
        let inserted = {
            let dev = self.world.device_mut(self.mig.guest)?;
            image_cache::insert(
                &mut dev.fs,
                &self.mig.pairing_root,
                &self.mig.package,
                &missed,
            )
        };
        if inserted > 0 {
            self.world
                .telemetry
                .counter_add("flux.cache.insertions", inserted as u64);
        }
        Ok(())
    }

    /// Records the acknowledged chunk prefix in the guest's staging area.
    pub(crate) fn stage_chunks(&mut self) -> Result<(), WorldError> {
        let total = self.prog.ledger().total().as_u64();
        let staged = (self.prog.delivered_chunks as u64 * DEFAULT_CHUNK.as_u64()).min(total);
        let dev = self.world.device_mut(self.mig.guest)?;
        if staged == 0 {
            return Ok(());
        }
        dev.fs.write(
            &self.mig.staged_path,
            flux_fs::Content::new(
                ByteSize::from_bytes(staged),
                fnv(&format!("{}-image-{staged}", self.mig.package)),
            ),
        );
        Ok(())
    }

    /// Removes the staged chunk files (consumed by restore, or torn down).
    pub(crate) fn remove_staged_chunks(&mut self) -> Result<(), WorldError> {
        let dev = self.world.device_mut(self.mig.guest)?;
        let _ = dev.fs.remove(&self.mig.staged_path);
        let _ = dev.fs.remove(&self.mig.precopy_path);
        Ok(())
    }

    /// Tears down partial guest state: the restored wrapper process (and
    /// with it the injected Binder references), the service-side state it
    /// may have accumulated, and — unless `keep_chunks` — the staged image
    /// chunks.
    pub(crate) fn teardown_guest(&mut self, keep_chunks: bool) -> Result<(), WorldError> {
        let now = self.world.clock.now();
        let dev = self.world.device_mut(self.mig.guest)?;
        if self.prog.guest_inserted {
            if let Some(app) = dev.apps.remove(&self.mig.package) {
                let uid = app.uid;
                let _ = dev.kernel.kill(app.main_pid);
                let kernel = &mut dev.kernel;
                dev.host.notify_uid_death(kernel, now, uid);
            }
            self.prog.guest_inserted = false;
        }
        if !keep_chunks {
            let _ = dev.fs.remove(&self.mig.staged_path);
            let _ = dev.fs.remove(&self.mig.precopy_path);
            self.prog.delivered_chunks = 0;
        }
        Ok(())
    }
}
