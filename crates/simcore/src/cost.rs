//! Cost models that turn work into virtual time.
//!
//! The paper's Figure 13 breaks a migration into five stages — preparation,
//! checkpoint, transfer, restore, reintegration. Everything but transfer is
//! CPU-bound work on the device; [`CostModel`] holds the per-unit costs used
//! to charge that work to the [`crate::SimClock`]. The default values were
//! calibrated so the reproduction matches the paper's reported shapes
//! (average migration ≈ 7.9 s dominated by transfer, non-transfer portion
//! ≈ 1.4 s; see EXPERIMENTS.md).

use crate::{ByteSize, SimDuration};
use serde::{Deserialize, Serialize};

/// Per-unit CPU costs for the migration pipeline, for a reference device.
///
/// Actual devices scale these by their [`CostModel::cpu_scale`] factor
/// (e.g. the 2012 Nexus 7's Tegra 3 is slower than the 2013 model's
/// Snapdragon S4 Pro).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// Relative CPU speed; 1.0 is the reference (Nexus 7 2013 class).
    pub cpu_scale: f64,
    /// Serialising one byte of process image during checkpoint.
    pub checkpoint_ns_per_byte: f64,
    /// Fixed overhead per checkpointed kernel object (VMA, fd, thread).
    pub checkpoint_ns_per_object: u64,
    /// Deserialising one byte of process image during restore.
    pub restore_ns_per_byte: f64,
    /// Fixed overhead per restored kernel object.
    pub restore_ns_per_object: u64,
    /// Compressing one byte of image before transfer.
    pub compress_ns_per_byte: f64,
    /// Decompressing one byte of image after transfer.
    pub decompress_ns_per_byte: f64,
    /// Replaying one recorded service call (Binder round trip + dispatch).
    pub replay_ns_per_call: u64,
    /// Recording one service call during app execution (async append).
    pub record_ns_per_call: u64,
    /// Destroying one hardware (GL) resource during trim-memory.
    pub gl_teardown_ns_per_resource: u64,
    /// Re-initialising one view during conditional re-initialisation.
    pub view_reinit_ns_per_view: u64,
    /// Hashing one byte during rsync delta computation.
    pub hash_ns_per_byte: f64,
    /// Fixed latency of moving an activity to the background and letting the
    /// task idler stop it (the paper notes prep is unoptimised because it
    /// waits for the idler).
    pub background_idle_latency: SimDuration,
    /// Fixed latency of one Binder transaction.
    pub binder_transaction: SimDuration,
}

impl CostModel {
    /// The reference cost model (Nexus 7 2013 class hardware).
    pub fn reference() -> Self {
        Self {
            cpu_scale: 1.0,
            checkpoint_ns_per_byte: 40.0,
            checkpoint_ns_per_object: 18_000,
            restore_ns_per_byte: 55.0,
            restore_ns_per_object: 15_000,
            compress_ns_per_byte: 22.0,
            decompress_ns_per_byte: 14.0,
            replay_ns_per_call: 600_000,
            record_ns_per_call: 2_000,
            gl_teardown_ns_per_resource: 120_000,
            view_reinit_ns_per_view: 800_000,
            hash_ns_per_byte: 2.2,
            background_idle_latency: SimDuration::from_millis(400),
            binder_transaction: SimDuration::from_micros(120),
        }
    }

    /// Returns a copy of this model scaled for a device `scale` times as
    /// fast as the reference (`scale < 1.0` means slower).
    pub fn scaled(&self, scale: f64) -> Self {
        let s = scale.max(0.05);
        Self {
            cpu_scale: s,
            checkpoint_ns_per_byte: self.checkpoint_ns_per_byte / s,
            checkpoint_ns_per_object: (self.checkpoint_ns_per_object as f64 / s) as u64,
            restore_ns_per_byte: self.restore_ns_per_byte / s,
            restore_ns_per_object: (self.restore_ns_per_object as f64 / s) as u64,
            compress_ns_per_byte: self.compress_ns_per_byte / s,
            decompress_ns_per_byte: self.decompress_ns_per_byte / s,
            replay_ns_per_call: (self.replay_ns_per_call as f64 / s) as u64,
            record_ns_per_call: (self.record_ns_per_call as f64 / s) as u64,
            gl_teardown_ns_per_resource: (self.gl_teardown_ns_per_resource as f64 / s) as u64,
            view_reinit_ns_per_view: (self.view_reinit_ns_per_view as f64 / s) as u64,
            hash_ns_per_byte: self.hash_ns_per_byte / s,
            background_idle_latency: SimDuration::from_nanos(
                (self.background_idle_latency.as_nanos() as f64 / s) as u64,
            ),
            binder_transaction: SimDuration::from_nanos(
                (self.binder_transaction.as_nanos() as f64 / s) as u64,
            ),
        }
    }

    /// The time to serialise `bytes` of image spread over `objects` kernel
    /// objects during checkpoint.
    pub fn checkpoint_time(&self, bytes: ByteSize, objects: u64) -> SimDuration {
        SimDuration::from_nanos(
            (bytes.as_u64() as f64 * self.checkpoint_ns_per_byte) as u64
                + objects * self.checkpoint_ns_per_object,
        )
    }

    /// The time to restore `bytes` of image spread over `objects` kernel
    /// objects.
    pub fn restore_time(&self, bytes: ByteSize, objects: u64) -> SimDuration {
        SimDuration::from_nanos(
            (bytes.as_u64() as f64 * self.restore_ns_per_byte) as u64
                + objects * self.restore_ns_per_object,
        )
    }

    /// The time to compress `bytes` before transfer.
    pub fn compress_time(&self, bytes: ByteSize) -> SimDuration {
        SimDuration::from_nanos((bytes.as_u64() as f64 * self.compress_ns_per_byte) as u64)
    }

    /// The time to decompress `bytes` after transfer.
    pub fn decompress_time(&self, bytes: ByteSize) -> SimDuration {
        SimDuration::from_nanos((bytes.as_u64() as f64 * self.decompress_ns_per_byte) as u64)
    }

    /// The time to replay `calls` recorded service calls.
    pub fn replay_time(&self, calls: u64) -> SimDuration {
        SimDuration::from_nanos(calls * self.replay_ns_per_call)
    }

    /// The time to hash `bytes` for rsync delta computation.
    pub fn hash_time(&self, bytes: ByteSize) -> SimDuration {
        SimDuration::from_nanos((bytes.as_u64() as f64 * self.hash_ns_per_byte) as u64)
    }
}

impl Default for CostModel {
    fn default() -> Self {
        Self::reference()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaled_model_is_proportionally_slower() {
        let fast = CostModel::reference();
        let slow = fast.scaled(0.5);
        let b = ByteSize::from_mib(4);
        let t_fast = fast.checkpoint_time(b, 100);
        let t_slow = slow.checkpoint_time(b, 100);
        let ratio = t_slow.as_nanos() as f64 / t_fast.as_nanos() as f64;
        assert!((ratio - 2.0).abs() < 0.01, "ratio was {ratio}");
    }

    #[test]
    fn scale_floor_prevents_divide_by_zero() {
        let m = CostModel::reference().scaled(0.0);
        assert!(m.cpu_scale > 0.0);
    }

    #[test]
    fn checkpoint_time_grows_with_objects_and_bytes() {
        let m = CostModel::reference();
        let t1 = m.checkpoint_time(ByteSize::from_mib(1), 10);
        let t2 = m.checkpoint_time(ByteSize::from_mib(2), 10);
        let t3 = m.checkpoint_time(ByteSize::from_mib(1), 1000);
        assert!(t2 > t1);
        assert!(t3 > t1);
    }

    #[test]
    fn replay_time_is_linear_in_calls() {
        let m = CostModel::reference();
        assert_eq!(
            m.replay_time(10).as_nanos(),
            m.replay_time(5).as_nanos() * 2
        );
    }
}
