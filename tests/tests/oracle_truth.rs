//! True-positive tests for the lifecycle data-loss oracle.
//!
//! A green oracle is worthless if it is vacuously green. Each test here
//! seeds one bug class from the taxonomy — a write raced by a kill, a
//! record log purged behind the oracle's back, residue planted after a
//! rollback — and asserts the oracle *detects* it, alongside the clean
//! counterpart proving the detection isn't a false positive.

mod common;

use flux_core::{
    migrate, run_scenario, FailureClass, LifecycleSchedule, MigrationSpec, OracleSnapshot,
    RetryPolicy, ScenarioOutcome,
};
use flux_simcore::ByteSize;
use flux_workloads::{spec, Action};

/// A Table 3 app whose script ends with an unsaved buffered write — the
/// data-loss hazard every schedule races differently.
fn app_with_buffered_write() -> flux_workloads::AppSpec {
    let mut app = spec("WhatsApp").unwrap();
    app.actions.push(Action::BufferedWrite {
        name: "unsaved.journal".into(),
        kib: 64,
    });
    app
}

#[test]
fn oracle_is_clean_across_all_lifecycle_schedules() {
    for schedule in LifecycleSchedule::ALL {
        let (mut world, home, guest, pkg) = common::staged("WhatsApp", common::SEED);
        let verdict = run_scenario(
            &mut world,
            schedule,
            MigrationSpec::new(&pkg).between(home, guest),
        )
        .unwrap();
        assert_eq!(
            verdict.outcome,
            ScenarioOutcome::Completed,
            "{}",
            schedule.key()
        );
        assert!(
            verdict.is_clean(),
            "{}: {:?}",
            schedule.key(),
            verdict.failures
        );
    }
}

#[test]
fn buffered_write_survives_pause_and_undisturbed_migration() {
    // onPause flushes; so does the engine's preparation stage. Either
    // way the promised bytes reach the guest mirror.
    for schedule in [
        LifecycleSchedule::Undisturbed,
        LifecycleSchedule::PauseThenMigrate,
        LifecycleSchedule::StopThenMigrate,
    ] {
        let app = app_with_buffered_write();
        let (mut world, home, guest, pkg) =
            common::staged_app(&app, common::SEED, flux_simcore::FaultPlan::none());
        let verdict = run_scenario(
            &mut world,
            schedule,
            MigrationSpec::new(&pkg).between(home, guest),
        )
        .unwrap();
        assert_eq!(verdict.outcome, ScenarioOutcome::Completed);
        assert!(
            verdict.is_clean(),
            "{}: {:?}",
            schedule.key(),
            verdict.failures
        );
    }
}

#[test]
fn kill_drops_the_buffered_write_and_the_oracle_sees_it() {
    // The genuine Riganelli-class bug: a kill without lifecycle
    // callbacks discards the in-memory write the app promised was saved.
    let app = app_with_buffered_write();
    let (mut world, home, guest, pkg) =
        common::staged_app(&app, common::SEED, flux_simcore::FaultPlan::none());
    let verdict = run_scenario(
        &mut world,
        LifecycleSchedule::KillThenMigrate,
        MigrationSpec::new(&pkg).between(home, guest),
    )
    .unwrap();
    assert_eq!(verdict.outcome, ScenarioOutcome::Completed);
    assert!(
        verdict.has(FailureClass::LostWrite),
        "kill must lose the buffered write: {:?}",
        verdict.failures
    );
}

#[test]
fn tampered_guest_mirror_is_flagged_as_lost_write() {
    let (mut world, home, guest, pkg) = common::staged("WhatsApp", common::SEED);
    let snap = OracleSnapshot::capture(&world, home, guest, &pkg).unwrap();
    let report = migrate(&mut world, MigrationSpec::new(&pkg).between(home, guest)).unwrap();
    assert!(snap.verdict(&world, Ok(&report)).is_clean());

    // Corrupt one mirrored file on the guest and re-judge.
    let home_name = world.device(home).unwrap().name.clone();
    let victim = format!("/data/flux/{home_name}/data/data/{pkg}/files/base.db");
    let guest_dev = world.device_mut(guest).unwrap();
    assert!(guest_dev.fs.exists(&victim), "mirror path staged");
    guest_dev.fs.write(
        &victim,
        flux_fs::Content::new(ByteSize::from_kib(1), 0xdead_beef),
    );
    let verdict = snap.verdict(&world, Ok(&report));
    assert!(
        verdict.has(FailureClass::LostWrite),
        "{:?}",
        verdict.failures
    );

    // Deleting it entirely is also a lost write.
    world.device_mut(guest).unwrap().fs.remove(&victim).unwrap();
    let verdict = snap.verdict(&world, Ok(&report));
    assert!(
        verdict.has(FailureClass::LostWrite),
        "{:?}",
        verdict.failures
    );
}

#[test]
fn purged_record_log_is_flagged_as_stale_replay() {
    let (mut world, home, guest, pkg) = common::staged("WhatsApp", common::SEED);
    let snap = OracleSnapshot::capture(&world, home, guest, &pkg).unwrap();
    assert!(snap.log_len() > 0, "workload recorded calls");

    // Purge recorded calls behind the oracle's back (no refresh — this
    // models the framework losing log entries, not a legitimate kill).
    let uid = world.device(home).unwrap().app_uid(&pkg).unwrap();
    let dev = world.device_mut(home).unwrap();
    let purged: usize = common::SERVICE_NAMES
        .iter()
        .map(|s| dev.records.log_mut(uid).purge_service(s))
        .sum();
    assert!(purged > 0, "something to purge");

    let report = migrate(&mut world, MigrationSpec::new(&pkg).between(home, guest)).unwrap();
    let verdict = snap.verdict(&world, Ok(&report));
    assert!(
        verdict.has(FailureClass::StaleReplay),
        "replay covered {} of {} promised entries: {:?}",
        report.replay.total(),
        snap.log_len(),
        verdict.failures
    );
}

#[test]
fn rollback_residue_and_home_loss_are_flagged() {
    // Force a deterministic mid-transfer rollback.
    let (mut world, home, guest, pkg) =
        common::staged_faulty("WhatsApp", common::SEED, flux_simcore::FaultPlan::none());
    let snap = OracleSnapshot::capture(&world, home, guest, &pkg).unwrap();
    let err = migrate(
        &mut world,
        MigrationSpec::new(&pkg)
            .between(home, guest)
            .faults(common::blanket_drops())
            .retry(RetryPolicy::none()),
    )
    .unwrap_err();
    let verdict = snap.verdict(&world, Err(&err));
    assert_eq!(verdict.outcome, ScenarioOutcome::RolledBack);
    assert!(verdict.is_clean(), "{:?}", verdict.failures);

    // Plant staged-image residue on the guest: the rollback "missed" it.
    let home_name = world.device(home).unwrap().name.clone();
    world.device_mut(guest).unwrap().fs.write(
        &format!("/data/flux/{home_name}/.migrate/{pkg}.image"),
        flux_fs::Content::new(ByteSize::from_mib(3), 0x5742),
    );
    let verdict = snap.verdict(&world, Err(&err));
    assert!(
        verdict.has(FailureClass::RollbackResidue),
        "{:?}",
        verdict.failures
    );

    // And losing a home file across the rollback is a lost write.
    world
        .device_mut(home)
        .unwrap()
        .fs
        .remove(&format!("/data/data/{pkg}/files/base.db"))
        .unwrap();
    let verdict = snap.verdict(&world, Err(&err));
    assert!(
        verdict.has(FailureClass::LostWrite),
        "{:?}",
        verdict.failures
    );
}

#[test]
fn refusals_carry_their_taxonomy_class() {
    // Subway Surfers preserves its EGL context (§3.4) …
    let (mut world, home, guest, pkg) = common::staged("Subway Surfers", common::SEED);
    let verdict = run_scenario(
        &mut world,
        LifecycleSchedule::Undisturbed,
        MigrationSpec::new(&pkg).between(home, guest),
    )
    .unwrap();
    assert_eq!(verdict.outcome, ScenarioOutcome::Refused);
    assert!(
        verdict.has(FailureClass::EglContext),
        "{:?}",
        verdict.failures
    );

    // … and Facebook is multi-process (§4).
    let (mut world, home, guest, pkg) = common::staged("Facebook", common::SEED);
    let verdict = run_scenario(
        &mut world,
        LifecycleSchedule::Undisturbed,
        MigrationSpec::new(&pkg).between(home, guest),
    )
    .unwrap();
    assert_eq!(verdict.outcome, ScenarioOutcome::Refused);
    assert!(
        verdict.has(FailureClass::IncompatibleFeature),
        "{:?}",
        verdict.failures
    );
}

#[test]
fn refusal_leaves_the_promise_intact() {
    // A preflight refusal must be free: same data tree, same record log.
    let (mut world, home, guest, pkg) = common::staged("Facebook", common::SEED);
    let snap = OracleSnapshot::capture(&world, home, guest, &pkg).unwrap();
    let err = migrate(&mut world, MigrationSpec::new(&pkg).between(home, guest)).unwrap_err();
    let verdict = snap.verdict(&world, Err(&err));
    assert_eq!(verdict.outcome, ScenarioOutcome::Refused);
    // Exactly one finding: the refusal class itself.
    assert_eq!(verdict.failures.len(), 1, "{:?}", verdict.failures);
    assert!(verdict.has(FailureClass::IncompatibleFeature));
}
