//! Fleet-scale concurrent migration scheduling.
//!
//! The paper's evaluation migrates one app between one device pair; a
//! production deployment has many migrations in flight at once, contending
//! for the same radio. A [`FleetScheduler`] accepts a batch of
//! [`MigrationRequest`]s across N devices and drives them concurrently over
//! virtual time:
//!
//! * **Admission control** — at most [`FleetConfig::max_in_flight`]
//!   migrations on the air, and per-device exclusivity: a device can be the
//!   *source* of one migration and the *target* of one migration at a time,
//!   never two of the same role.
//! * **FIFO-with-priority queueing** — requests admit in descending
//!   [`MigrationRequest::priority`], FIFO (ascending request id) within a
//!   class. A request whose devices are busy is skipped, not head-of-line
//!   blocking: later requests backfill the air.
//! * **Shared medium** — the freeze-time transfer of every in-flight
//!   migration drains a [`RadioMedium`], so K concurrent transfers see
//!   ~1/K goodput each and concurrency is never free.
//! * **Retry/rollback composition** — each request carries its own
//!   [`MigrationConfig`] (hence [`RetryPolicy`](crate::RetryPolicy)) and an
//!   optional [`FaultPlan`] expressed *relative to its own start*; a
//!   migration that exhausts its retries rolls back alone, occupying its
//!   devices for the time the attempts and the rollback actually took.
//!
//! # Execution model and determinism
//!
//! The fleet runs on two levels, split behind the
//! [`Executor`] API. An executor *executes*
//! every request of the batch up front, each inside a private two-device
//! *world shard* with a clock opened at the batch start, a forked RNG
//! stream keyed by the request id, and a private telemetry hub — see the
//! [`executor`](crate::executor) module for the shard construction and the
//! conflict-group rule that lets [`ParallelExecutor`](crate::ParallelExecutor)
//! run device-disjoint requests on OS threads. The scheduler then places
//! the measured phases onto the fleet timeline: a CPU-bound span (pre-copy,
//! preparation, checkpoint, backoff), the shared-medium transfer, and a
//! CPU-bound tail (restore, reintegration). At admission, the request's
//! shard telemetry is absorbed into the world hub shifted to the admission
//! instant, so spans land where the fleet schedule actually placed them.
//!
//! Per-device exclusivity makes the fleet schedule serialisable, admission
//! order is a pure function of (priority, request id) and completion
//! events, and RNG streams are keyed by request id — never by submission
//! or execution order. A batch therefore produces byte-identical reports
//! and telemetry however its requests were permuted *and whichever
//! executor runs it*; the executor proptests pin serial/parallel
//! byte-identity across worker counts. Simultaneous fleet events are
//! interleaved by a [`Timeline`] keyed on the stable request id. When the
//! batch drains, the world clock advances to the end of the fleet
//! schedule (batch start plus makespan).
//!
//! Uncontended, a fleet transfer drains in exactly its serial duration, so
//! a single-request fleet reproduces a lone [`crate::migrate`] run's stage
//! figures to the nanosecond, provided the lone run uses the same forked
//! RNG stream — the scenario suite pins this.
//!
//! # Examples
//!
//! ```
//! use flux_core::{pair, FleetConfig, FleetScheduler, MigrationRequest, WorldBuilder};
//! use flux_device::DeviceProfile;
//! use flux_workloads::spec;
//!
//! let app = spec("WhatsApp").unwrap();
//! let (mut world, ids) = WorldBuilder::new()
//!     .seed(42)
//!     .device("phone", DeviceProfile::nexus4())
//!     .device("tablet", DeviceProfile::nexus7_2013())
//!     .app(0, app.clone())
//!     .pair(0, 1)
//!     .build()
//!     .unwrap();
//! world.run_script(ids[0], &app.package.clone(), &app.actions.clone()).unwrap();
//!
//! let scheduler = FleetScheduler::new(FleetConfig::default()).unwrap();
//! let batch = vec![MigrationRequest::new(1, ids[0], ids[1], &app.package)];
//! let report = scheduler.run(&mut world, batch).unwrap();
//! assert_eq!(report.completed, 1);
//! assert!(report.makespan > flux_simcore::SimDuration::ZERO);
//! ```

use crate::errors::FluxError;
use crate::executor::{ExecutedMigration, Executor, SerialExecutor};
use crate::migration::{MigrationConfig, MigrationReport};
use crate::world::{DeviceId, FluxWorld};
use flux_net::{MediumSegment, RadioMedium};
use flux_simcore::{FaultPlan, SimDuration, SimTime, Timeline};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// One migration the fleet should perform.
#[derive(Debug, Clone)]
pub struct MigrationRequest {
    /// Stable id: the determinism key (event ties, FIFO order, RNG stream
    /// fork) and the name of the request's telemetry lane. Unique within a
    /// batch.
    pub id: u64,
    /// Source device.
    pub home: DeviceId,
    /// Target device.
    pub guest: DeviceId,
    /// Package to migrate.
    pub package: String,
    /// Admission priority: higher admits first; FIFO by id within a class.
    pub priority: u8,
    /// Engine configuration (retry policy, pre-copy, pipelining, cache).
    pub cfg: MigrationConfig,
    /// Fault schedule relative to this migration's own start; the
    /// executor shifts it onto the batch-open instant, where the
    /// request's shard executes. [`FaultPlan::none`] inherits the world's
    /// ambient plan instead.
    pub faults: FaultPlan,
}

impl MigrationRequest {
    /// A default-engine, priority-0, fault-free request.
    pub fn new(id: u64, home: DeviceId, guest: DeviceId, package: &str) -> Self {
        Self {
            id,
            home,
            guest,
            package: package.to_owned(),
            priority: 0,
            cfg: MigrationConfig::default(),
            faults: FaultPlan::none(),
        }
    }

    /// Sets the admission priority.
    pub fn with_priority(mut self, priority: u8) -> Self {
        self.priority = priority;
        self
    }

    /// Sets the engine configuration.
    pub fn with_config(mut self, cfg: MigrationConfig) -> Self {
        self.cfg = cfg;
        self
    }

    /// Sets the request-relative fault schedule.
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }
}

/// Admission and contention knobs for a fleet run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FleetConfig {
    /// Maximum concurrently in-flight migrations. `1` serialises the batch.
    pub max_in_flight: usize,
    /// Aggregate goodput (Mbit/s) of the shared radio medium. The default
    /// clears a lone campus-WiFi dual-band transfer (~22 Mbit/s effective)
    /// but makes two concurrent transfers contend.
    pub medium_capacity_mbps: f64,
}

impl Default for FleetConfig {
    fn default() -> Self {
        Self {
            max_in_flight: 4,
            medium_capacity_mbps: 30.0,
        }
    }
}

/// How one fleet request ended.
#[derive(Debug, Clone)]
pub enum FleetOutcome {
    /// The migration succeeded; the full single-pair report.
    Completed(MigrationReport),
    /// Faults exhausted the retry budget; the migration was rolled back and
    /// the app runs on its home device again.
    RolledBack {
        /// The terminal migration error.
        error: FluxError,
    },
    /// The engine refused the migration pre-flight (not paired, app not
    /// running, §3.3–3.4 restrictions); no device time or air was consumed.
    Refused {
        /// The refusal.
        error: FluxError,
    },
}

/// Serializes as a tagged object: `{"status": "completed", "report":
/// {..}}`, or `{"status": "rolled_back" | "refused", "error": "<reason>"}`.
impl serde::Serialize for FleetOutcome {
    fn serialize(&self, out: &mut String) {
        let mut obj = serde::object(out);
        match self {
            FleetOutcome::Completed(report) => {
                obj.field("status", &"completed").field("report", report);
            }
            FleetOutcome::RolledBack { error } => {
                obj.field("status", &"rolled_back").field("error", error);
            }
            FleetOutcome::Refused { error } => {
                obj.field("status", &"refused").field("error", error);
            }
        }
        obj.end();
    }
}

/// Deserializes the tagged object written by the [`serde::Serialize`]
/// impl. Errors come back as [`FluxError::Recovered`] carrying the
/// serialized reason verbatim.
impl<'de> serde::Deserialize<'de> for FleetOutcome {
    fn deserialize(v: &serde::JsonValue) -> Result<Self, serde::DeError> {
        let status: String = v.read("status")?;
        match status.as_str() {
            "completed" => Ok(FleetOutcome::Completed(v.read("report")?)),
            "rolled_back" => Ok(FleetOutcome::RolledBack {
                error: v.read("error")?,
            }),
            "refused" => Ok(FleetOutcome::Refused {
                error: v.read("error")?,
            }),
            other => Err(serde::DeError::msg(format!(
                "unknown fleet outcome status `{other}`"
            ))),
        }
    }
}

impl FleetOutcome {
    /// Whether the request completed successfully.
    pub fn is_completed(&self) -> bool {
        matches!(self, FleetOutcome::Completed(_))
    }

    /// The single-pair report, when completed.
    pub fn report(&self) -> Option<&MigrationReport> {
        match self {
            FleetOutcome::Completed(r) => Some(r),
            _ => None,
        }
    }
}

/// Where one request spent its time on the fleet timeline.
#[derive(Debug, Clone)]
pub struct FlightRecord {
    /// The request's stable id.
    pub id: u64,
    /// Migrated package.
    pub package: String,
    /// Source device.
    pub home: DeviceId,
    /// Target device.
    pub guest: DeviceId,
    /// Admission priority the request ran at.
    pub priority: u8,
    /// When the batch opened (all requests submit together).
    pub submitted_at: SimTime,
    /// When admission control let the request onto its devices.
    pub admitted_at: SimTime,
    /// When its freeze-time transfer joined the medium. Equals
    /// `admitted_at` plus the CPU-bound head; for refused or rolled-back
    /// requests (which never reach the medium), the end of their span.
    pub transfer_start: SimTime,
    /// When its transfer drained. Equals `transfer_start` when the request
    /// never reached the medium.
    pub transfer_end: SimTime,
    /// When the request left its devices.
    pub finished_at: SimTime,
    /// How it ended.
    pub outcome: FleetOutcome,
}

impl serde::Serialize for FlightRecord {
    fn serialize(&self, out: &mut String) {
        let mut obj = serde::object(out);
        obj.field("id", &self.id)
            .field("package", &self.package)
            .field("home", &self.home)
            .field("guest", &self.guest)
            .field("priority", &self.priority)
            .field("submitted_at", &self.submitted_at)
            .field("admitted_at", &self.admitted_at)
            .field("transfer_start", &self.transfer_start)
            .field("transfer_end", &self.transfer_end)
            .field("finished_at", &self.finished_at)
            .field("outcome", &self.outcome);
        obj.end();
    }
}

impl<'de> serde::Deserialize<'de> for FlightRecord {
    fn deserialize(v: &serde::JsonValue) -> Result<Self, serde::DeError> {
        Ok(Self {
            id: v.read("id")?,
            package: v.read("package")?,
            home: v.read("home")?,
            guest: v.read("guest")?,
            priority: v.read("priority")?,
            submitted_at: v.read("submitted_at")?,
            admitted_at: v.read("admitted_at")?,
            transfer_start: v.read("transfer_start")?,
            transfer_end: v.read("transfer_end")?,
            finished_at: v.read("finished_at")?,
            outcome: v.read("outcome")?,
        })
    }
}

impl FlightRecord {
    /// Time spent queued before admission.
    pub fn queue_wait(&self) -> SimDuration {
        self.admitted_at.since(self.submitted_at)
    }

    /// Admission-to-finish span.
    pub fn span(&self) -> SimDuration {
        self.finished_at.since(self.admitted_at)
    }
}

/// The result of a whole fleet run.
#[derive(Debug, Clone)]
pub struct FleetReport {
    /// One record per request, ascending by request id.
    pub flights: Vec<FlightRecord>,
    /// When the batch opened.
    pub started_at: SimTime,
    /// Fleet-timeline span from batch open to the last flight's finish.
    pub makespan: SimDuration,
    /// What the same batch would have taken with `max_in_flight = 1` under
    /// the same medium: the sum of every flight's uncontended span.
    pub serialized_makespan: SimDuration,
    /// Most migrations simultaneously in flight.
    pub peak_in_flight: usize,
    /// The medium's constant-rate allocation trace.
    pub medium: Vec<MediumSegment>,
    /// Requests that completed.
    pub completed: usize,
    /// Requests that rolled back.
    pub rolled_back: usize,
    /// Requests refused pre-flight.
    pub refused: usize,
}

/// Serializes the whole report tree — flights, timing, medium trace —
/// compactly; the throughput bench embeds this verbatim in
/// `BENCH_throughput.json`.
impl serde::Serialize for FleetReport {
    fn serialize(&self, out: &mut String) {
        let mut obj = serde::object(out);
        obj.field("flights", &self.flights)
            .field("started_at", &self.started_at)
            .field("makespan", &self.makespan)
            .field("serialized_makespan", &self.serialized_makespan)
            .field("peak_in_flight", &self.peak_in_flight)
            .field("medium", &self.medium)
            .field("completed", &self.completed)
            .field("rolled_back", &self.rolled_back)
            .field("refused", &self.refused);
        obj.end();
    }
}

/// Deserializes the report tree; with [`serde::Serialize`] this gives the
/// byte-identical JSON round-trip that snapshot recovery depends on.
impl<'de> serde::Deserialize<'de> for FleetReport {
    fn deserialize(v: &serde::JsonValue) -> Result<Self, serde::DeError> {
        Ok(Self {
            flights: v.read("flights")?,
            started_at: v.read("started_at")?,
            makespan: v.read("makespan")?,
            serialized_makespan: v.read("serialized_makespan")?,
            peak_in_flight: v.read("peak_in_flight")?,
            medium: v.read("medium")?,
            completed: v.read("completed")?,
            rolled_back: v.read("rolled_back")?,
            refused: v.read("refused")?,
        })
    }
}

/// A request occupying its devices.
struct Active {
    idx: usize,
    admitted_at: SimTime,
    transfer_start: SimTime,
    transfer_end: SimTime,
    exec: ExecutedMigration,
}

/// Fleet-timeline events, keyed by request id.
enum FleetEvent {
    /// The CPU-bound head finished; the transfer may join the medium.
    PreDone,
    /// The CPU-bound tail finished; the request leaves its devices.
    PostDone,
}

/// Drives batches of migrations concurrently over virtual time.
///
/// Execution is delegated to the configured [`Executor`] —
/// [`SerialExecutor`] by default, [`ParallelExecutor`](crate::ParallelExecutor)
/// via [`FleetScheduler::with_executor`] — with byte-identical results
/// either way. See the [module docs](self) for the execution model.
#[derive(Debug, Clone)]
pub struct FleetScheduler {
    cfg: FleetConfig,
    executor: Arc<dyn Executor>,
}

impl FleetScheduler {
    /// Validates `cfg` and builds a scheduler with the default
    /// [`SerialExecutor`].
    ///
    /// # Errors
    ///
    /// [`FluxError::Config`] when `max_in_flight` is zero or the medium
    /// capacity is not strictly positive and finite.
    pub fn new(cfg: FleetConfig) -> Result<Self, FluxError> {
        if cfg.max_in_flight == 0 {
            return Err(FluxError::Config(
                "fleet max_in_flight must be at least 1".into(),
            ));
        }
        if !(cfg.medium_capacity_mbps > 0.0 && cfg.medium_capacity_mbps.is_finite()) {
            return Err(FluxError::Config(format!(
                "fleet medium capacity must be positive, got {}",
                cfg.medium_capacity_mbps
            )));
        }
        Ok(Self {
            cfg,
            executor: Arc::new(SerialExecutor),
        })
    }

    /// Replaces the executor the scheduler runs batches through.
    pub fn with_executor(mut self, executor: impl Executor + 'static) -> Self {
        self.executor = Arc::new(executor);
        self
    }

    /// The scheduler's configuration.
    pub fn config(&self) -> &FleetConfig {
        &self.cfg
    }

    /// The executor batches run through.
    pub fn executor(&self) -> &dyn Executor {
        &*self.executor
    }

    /// Runs `requests` to completion and returns the fleet report.
    ///
    /// Every request reaches a terminal [`FleetOutcome`]; an individual
    /// migration failing is reported per-flight, not as an `Err`.
    ///
    /// # Errors
    ///
    /// [`FluxError::Config`] when two requests share an id (the id is the
    /// determinism key, so collisions would make tie-breaking ambiguous).
    pub fn run(
        &self,
        world: &mut FluxWorld,
        requests: Vec<MigrationRequest>,
    ) -> Result<FleetReport, FluxError> {
        let mut ids = BTreeSet::new();
        for req in &requests {
            if !ids.insert(req.id) {
                return Err(FluxError::Config(format!(
                    "duplicate fleet request id {}",
                    req.id
                )));
            }
        }

        let start = world.clock.now();
        world
            .telemetry
            .counter_add("flux.fleet.submitted", requests.len() as u64);

        // Execute the whole batch up front: one measured shape per request,
        // in world shards on private clocks (see `crate::executor`).
        let mut execs: Vec<Option<ExecutedMigration>> = self
            .executor
            .execute(world, &requests)
            .into_iter()
            .map(Some)
            .collect();
        debug_assert_eq!(execs.len(), requests.len());

        // Canonical queue order — priority descending, id ascending — is
        // independent of the order `requests` arrived in.
        let mut queue: Vec<usize> = (0..requests.len()).collect();
        queue.sort_by_key(|&i| (std::cmp::Reverse(requests[i].priority), requests[i].id));

        let mut medium = RadioMedium::new(self.cfg.medium_capacity_mbps, start);
        let mut timeline: Timeline<FleetEvent> = Timeline::new();
        let mut active: BTreeMap<u64, Active> = BTreeMap::new();
        let mut busy_source: BTreeSet<usize> = BTreeSet::new();
        let mut busy_target: BTreeSet<usize> = BTreeSet::new();
        let mut flights: BTreeMap<u64, FlightRecord> = BTreeMap::new();
        let mut serialized = SimDuration::ZERO;
        let mut peak = 0usize;
        let mut now = start;

        loop {
            // Admission pass: scan the queue in canonical order, admitting
            // everything whose devices are free while slots remain.
            let mut still_queued = Vec::with_capacity(queue.len());
            for &idx in &queue {
                let req = &requests[idx];
                let admissible = active.len() < self.cfg.max_in_flight
                    && !busy_source.contains(&req.home.0)
                    && !busy_target.contains(&req.guest.0);
                if !admissible {
                    still_queued.push(idx);
                    continue;
                }
                busy_source.insert(req.home.0);
                busy_target.insert(req.guest.0);
                let exec = execs[idx].take().expect("each request admits once");
                // Land the shard's telemetry where the fleet schedule
                // actually placed the request: shard times run from the
                // batch open, so shifting by the queue wait pins the
                // spans to the admission instant, in admission order.
                world.telemetry.absorb(&exec.telemetry, now.since(start));
                serialized += isolated_span(&exec, self.cfg.medium_capacity_mbps);
                world.telemetry.counter_add("flux.fleet.admitted", 1);
                timeline.schedule(now + exec.pre, req.id, FleetEvent::PreDone);
                active.insert(
                    req.id,
                    Active {
                        idx,
                        admitted_at: now,
                        transfer_start: now,
                        transfer_end: now,
                        exec,
                    },
                );
                peak = peak.max(active.len());
            }
            queue = still_queued;
            world
                .telemetry
                .gauge_set("flux.fleet.queue_depth", queue.len() as f64);

            if active.is_empty() {
                // Nothing in flight and (with max_in_flight >= 1 and all
                // devices free) nothing admissible: the queue is drained.
                debug_assert!(queue.is_empty());
                break;
            }

            // Advance the fleet clock to the next interesting instant.
            let next = [medium.next_completion().map(|(t, _)| t), timeline.next_at()]
                .into_iter()
                .flatten()
                .min()
                .expect("active flights always have a pending event");
            medium.advance(next);
            now = next;

            // Drained transfers first (they free air for flows joining at
            // the same instant), then due CPU-phase events, both in
            // ascending request-id order.
            for id in medium.take_completed() {
                let flight = active.get_mut(&id).expect("completed flow is active");
                flight.transfer_end = now;
                timeline.schedule(now + flight.exec.post, id, FleetEvent::PostDone);
            }
            while let Some((at, id, event)) = timeline.pop_due(now) {
                match event {
                    FleetEvent::PreDone => {
                        let flight = active.get_mut(&id).expect("pre-done flight is active");
                        flight.transfer_start = at;
                        match flight.exec.flow {
                            Some((bytes, air)) => medium.admit(id, bytes, air),
                            None => {
                                flight.transfer_end = at;
                                timeline.schedule(at + flight.exec.post, id, FleetEvent::PostDone);
                            }
                        }
                    }
                    FleetEvent::PostDone => {
                        let flight = active.remove(&id).expect("post-done flight is active");
                        let req = &requests[flight.idx];
                        busy_source.remove(&req.home.0);
                        busy_target.remove(&req.guest.0);
                        let record = finish_flight(world, req, flight, start, at);
                        flights.insert(id, record);
                    }
                }
            }
        }

        let makespan = now.since(start);
        // Execution happened on private shard clocks; the world clock owes
        // the fleet schedule's span.
        world.clock.advance_to(start + makespan);
        world
            .telemetry
            .observe("flux.fleet.makespan_ms", makespan.as_millis());
        world
            .telemetry
            .gauge_set("flux.fleet.peak_in_flight", peak as f64);

        let flights: Vec<FlightRecord> = flights.into_values().collect();
        let completed = flights.iter().filter(|f| f.outcome.is_completed()).count();
        let rolled_back = flights
            .iter()
            .filter(|f| matches!(f.outcome, FleetOutcome::RolledBack { .. }))
            .count();
        let refused = flights
            .iter()
            .filter(|f| matches!(f.outcome, FleetOutcome::Refused { .. }))
            .count();
        Ok(FleetReport {
            flights,
            started_at: start,
            makespan,
            serialized_makespan: serialized,
            peak_in_flight: peak,
            medium: medium.segments().to_vec(),
            completed,
            rolled_back,
            refused,
        })
    }
}

/// Runs `requests` under [`FleetConfig::default`].
///
/// # Errors
///
/// As for [`FleetScheduler::run`].
pub fn run_fleet(
    world: &mut FluxWorld,
    requests: Vec<MigrationRequest>,
) -> Result<FleetReport, FluxError> {
    FleetScheduler::new(FleetConfig::default())?.run(world, requests)
}

/// A flight's span had it run alone under `capacity_mbps` — exactly the
/// slice a `max_in_flight = 1` schedule would give it.
fn isolated_span(exec: &ExecutedMigration, capacity_mbps: f64) -> SimDuration {
    let air = match exec.flow {
        Some((bytes, air)) => {
            let nominal = bytes.as_u64() as f64 * 8.0 / air.as_secs_f64() / 1e6;
            if nominal <= capacity_mbps {
                air
            } else {
                SimDuration::from_nanos(
                    (air.as_nanos() as f64 * nominal / capacity_mbps).ceil() as u64
                )
            }
        }
        None => SimDuration::ZERO,
    };
    exec.pre + air + exec.post
}

/// Emits the flight's telemetry lane and builds its record.
fn finish_flight(
    world: &mut FluxWorld,
    req: &MigrationRequest,
    flight: Active,
    submitted_at: SimTime,
    finished_at: SimTime,
) -> FlightRecord {
    let lane = world.telemetry.lane(&format!("fleet.m{:03}", req.id));
    world
        .telemetry
        .record_complete(lane, "fleet.queued", submitted_at, flight.admitted_at);
    world
        .telemetry
        .record_complete(lane, "fleet.pre", flight.admitted_at, flight.transfer_start);
    if flight.transfer_end > flight.transfer_start {
        world.telemetry.record_complete(
            lane,
            "fleet.transfer",
            flight.transfer_start,
            flight.transfer_end,
        );
    }
    world
        .telemetry
        .record_complete(lane, "fleet.post", flight.transfer_end, finished_at);
    let counter = match flight.exec.outcome {
        FleetOutcome::Completed(_) => "flux.fleet.completed",
        FleetOutcome::RolledBack { .. } => "flux.fleet.rolled_back",
        FleetOutcome::Refused { .. } => "flux.fleet.refused",
    };
    world.telemetry.counter_add(counter, 1);
    world.telemetry.observe(
        "flux.fleet.queue_wait_ms",
        flight.admitted_at.since(submitted_at).as_millis(),
    );
    FlightRecord {
        id: req.id,
        package: req.package.clone(),
        home: req.home,
        guest: req.guest,
        priority: req.priority,
        submitted_at,
        admitted_at: flight.admitted_at,
        transfer_start: flight.transfer_start,
        transfer_end: flight.transfer_end,
        finished_at,
        outcome: flight.exec.outcome,
    }
}
