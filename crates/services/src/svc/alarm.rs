//! The AlarmManagerService.
//!
//! Figures 8–10 of the paper: alarms are set with a trigger time and a
//! PendingIntent `operation`; on migration the record log re-sets only
//! alarms that had not yet fired (the `alarmMgrSet` proxy compares against
//! the checkpoint time). Here alarms are backed by the kernel alarm driver
//! and fire through [`AlarmManagerService::kernel_alarm_fired`].

use crate::intent::Event;
use crate::service::{ServiceCtx, SystemService};
use flux_binder::{BinderError, Parcel};
use flux_kernel::AlarmClockType;
use flux_simcore::{SimTime, Uid};
use std::any::Any;
use std::collections::BTreeMap;

/// A pending alarm as the service tracks it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AlarmRecord {
    /// Owning app.
    pub uid: Uid,
    /// Alarm type (RTC_WAKEUP etc., as passed by the app).
    pub alarm_type: i32,
    /// Absolute trigger time.
    pub trigger_at: SimTime,
    /// Identity of the PendingIntent to broadcast.
    pub operation: String,
    /// Kernel alarm cookie.
    pub cookie: u64,
}

/// The alarm service state.
#[derive(Debug, Default)]
pub struct AlarmManagerService {
    by_operation: BTreeMap<(Uid, String), AlarmRecord>,
    by_cookie: BTreeMap<u64, (Uid, String)>,
    /// Wall-clock offset applied by `setTime` (affects reporting only).
    pub time_offset_ms: i64,
    /// Current timezone id.
    pub timezone: String,
}

impl AlarmManagerService {
    /// Pending alarms of `uid`, soonest first.
    pub fn pending_for(&self, uid: Uid) -> Vec<&AlarmRecord> {
        let mut v: Vec<&AlarmRecord> = self
            .by_operation
            .values()
            .filter(|a| a.uid == uid)
            .collect();
        v.sort_by_key(|a| a.trigger_at);
        v
    }

    /// Total pending alarms.
    pub fn pending_count(&self) -> usize {
        self.by_operation.len()
    }

    /// Called by the environment when the kernel alarm driver fires
    /// `cookie`; returns the delivery for the owning app, if the alarm was
    /// still tracked.
    pub fn kernel_alarm_fired(&mut self, cookie: u64) -> Option<(Uid, Event)> {
        let key = self.by_cookie.remove(&cookie)?;
        let record = self.by_operation.remove(&key)?;
        Some((
            record.uid,
            Event::AlarmFired {
                operation: record.operation,
            },
        ))
    }

    fn set_alarm(
        &mut self,
        ctx: &mut ServiceCtx<'_>,
        alarm_type: i32,
        trigger_at: SimTime,
        operation: String,
    ) {
        let key = (ctx.caller_uid, operation.clone());
        // A re-set with the same operation replaces the previous alarm,
        // mirroring AlarmManager.set semantics.
        if let Some(prev) = self.by_operation.remove(&key) {
            ctx.kernel.alarm.cancel(prev.cookie);
            self.by_cookie.remove(&prev.cookie);
        }
        let clock = if alarm_type % 2 == 0 {
            AlarmClockType::RtcWakeup
        } else {
            AlarmClockType::Rtc
        };
        let cookie = ctx.kernel.alarm.set(ctx.service_pid, clock, trigger_at);
        self.by_cookie.insert(cookie, key.clone());
        self.by_operation.insert(
            key,
            AlarmRecord {
                uid: ctx.caller_uid,
                alarm_type,
                trigger_at,
                operation,
                cookie,
            },
        );
    }
}

impl SystemService for AlarmManagerService {
    fn descriptor(&self) -> &'static str {
        "IAlarmManager"
    }

    fn registry_name(&self) -> &'static str {
        "alarm"
    }

    fn on_call(
        &mut self,
        ctx: &mut ServiceCtx<'_>,
        method: &str,
        args: &Parcel,
    ) -> Result<Parcel, BinderError> {
        match method {
            "set" => {
                let alarm_type = args.i32(0)?;
                let trigger_at = SimTime::from_millis(args.i64(1)?.max(0) as u64);
                let operation = args.str(2)?.to_owned();
                self.set_alarm(ctx, alarm_type, trigger_at, operation);
                Ok(Parcel::new())
            }
            "remove" => {
                let operation = args.str(0)?.to_owned();
                if let Some(prev) = self.by_operation.remove(&(ctx.caller_uid, operation)) {
                    ctx.kernel.alarm.cancel(prev.cookie);
                    self.by_cookie.remove(&prev.cookie);
                }
                Ok(Parcel::new())
            }
            "setTime" => {
                self.time_offset_ms = args.i64(0)?;
                Ok(Parcel::new())
            }
            "setTimeZone" => {
                self.timezone = args.str(0)?.to_owned();
                Ok(Parcel::new())
            }
            other => Err(ctx.fail(self.descriptor(), other, "unhandled method")),
        }
    }

    fn on_uid_death(&mut self, ctx: &mut ServiceCtx<'_>, uid: Uid) {
        // Cancel the dead app's kernel alarms and forget its records.
        let dead: Vec<(Uid, String)> = self
            .by_operation
            .keys()
            .filter(|(u, _)| *u == uid)
            .cloned()
            .collect();
        for key in dead {
            if let Some(rec) = self.by_operation.remove(&key) {
                ctx.kernel.alarm.cancel(rec.cookie);
                self.by_cookie.remove(&rec.cookie);
            }
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}
