//! Foundation types for the Flux simulation environment.
//!
//! Flux (EuroSys 2015) migrates running Android apps between heterogeneous
//! devices. This reproduction runs the entire Android substrate as a
//! deterministic discrete-time simulation; `flux-simcore` provides the
//! pieces every other crate builds on:
//!
//! * [`SimClock`] / [`SimTime`] / [`SimDuration`] — virtual time. All
//!   migration-phase costs are charged here, which makes every experiment
//!   reproducible for a fixed RNG seed.
//! * [`ByteSize`] — sizes of APKs, checkpoint images, VMAs and transfers.
//! * [`SimRng`] — a seedable RNG so workload noise is deterministic.
//! * [`CostModel`] — per-operation CPU/serialisation cost parameters used by
//!   the checkpoint, restore and replay paths.
//! * [`trace`] — a lightweight event trace used by tests and the benchmark
//!   harnesses to explain where time went.
//! * [`fault`] — seeded [`FaultPlan`] schedules of link drops, congestion
//!   spikes and kernel stalls that the transfer and migration paths consult
//!   when fault injection is enabled.
//! * [`pipeline`] — a virtual-time lane scheduler so pipelined migration can
//!   overlap compression, radio transfer and filesystem sync while staying
//!   deterministic.

pub mod cost;
pub mod fault;
pub mod ids;
pub mod pipeline;
pub mod rng;
pub mod size;
pub mod time;
pub mod trace;
pub mod wire;

pub use cost::CostModel;
pub use fault::{FaultConfig, FaultEvent, FaultKind, FaultPlan};
pub use ids::{Pid, Uid};
pub use pipeline::{FusedLanes, PipeLane, Pipeline, Timeline};
pub use rng::{SimRng, SimRngState};
pub use size::ByteSize;
pub use time::{SimClock, SimDuration, SimTime};
pub use trace::{Trace, TraceEvent, TraceKind};
pub use wire::{WireError, WireReader, WireWriter};

/// A monotonically increasing id allocator.
///
/// Used for PIDs, Binder handles, node ids, alarm cookies and anything else
/// that needs small unique integers. Allocation order is deterministic.
///
/// # Examples
///
/// ```
/// let mut ids = flux_simcore::IdAlloc::starting_at(100);
/// assert_eq!(ids.next(), 100);
/// assert_eq!(ids.next(), 101);
/// ```
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct IdAlloc {
    next: u64,
}

impl IdAlloc {
    /// Creates an allocator whose first id is `first`.
    pub fn starting_at(first: u64) -> Self {
        Self { next: first }
    }

    /// Returns the next id, advancing the allocator.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> u64 {
        let id = self.next;
        self.next += 1;
        id
    }

    /// Returns the id that the next call to [`IdAlloc::next`] would produce.
    pub fn peek(&self) -> u64 {
        self.next
    }

    /// Advances the allocator so it will never hand out ids `<= floor`.
    ///
    /// Used when restoring checkpointed state that already contains ids, so
    /// freshly allocated ids cannot collide with restored ones.
    pub fn reserve_through(&mut self, floor: u64) {
        if self.next <= floor {
            self.next = floor + 1;
        }
    }
}

impl Default for IdAlloc {
    fn default() -> Self {
        Self::starting_at(1)
    }
}

#[cfg(test)]
mod tests {
    use super::IdAlloc;

    #[test]
    fn id_alloc_is_sequential() {
        let mut ids = IdAlloc::default();
        assert_eq!(ids.next(), 1);
        assert_eq!(ids.next(), 2);
        assert_eq!(ids.peek(), 3);
    }

    #[test]
    fn id_alloc_reserve_through_skips_used_range() {
        let mut ids = IdAlloc::default();
        ids.reserve_through(41);
        assert_eq!(ids.next(), 42);
        // Reserving a lower floor is a no-op.
        ids.reserve_through(10);
        assert_eq!(ids.next(), 43);
    }
}
