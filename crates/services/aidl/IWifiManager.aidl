// WifiService, Flux-decorated. Network configurations the app added, scan
// requests and locks are app-specific; connectivity itself is NOT replayed
// verbatim — the app is told of a disconnect and a fresh connection on the
// guest (§3.1), so enable/disable calls replay through proxies that respect
// the guest's current radio state.
interface IWifiManager {
    List<ScanResult> getScanResults(String callingPackage);
    @record {
        @drop this;
        @replayproxy flux.recordreplay.Proxies.wifiScanRequest;
    }
    void startScan(in WorkSource ws);
    List<WifiConfiguration> getConfiguredNetworks();
    @record {
        @drop this;
        @if config;
        @replayproxy flux.recordreplay.Proxies.wifiAddNetwork;
    }
    int addOrUpdateNetwork(in WifiConfiguration config);
    @record {
        @drop this, enableNetwork, disableNetwork;
        @if netId;
    }
    boolean removeNetwork(int netId);
    @record {
        @drop this;
        @if netId;
    }
    boolean enableNetwork(int netId, boolean disableOthers);
    @record {
        @drop this, enableNetwork;
        @if netId;
    }
    boolean disableNetwork(int netId);
    boolean pingSupplicant();
    WifiInfo getConnectionInfo();
    @record {
        @drop this;
        @if enable;
        @replayproxy flux.recordreplay.Proxies.wifiSetEnabled;
    }
    boolean setWifiEnabled(boolean enable);
    int getWifiEnabledState();
    @record {
        @drop this;
    }
    void setCountryCode(String country, boolean persist);
    void setFrequencyBand(int band, boolean persist);
    int getFrequencyBand();
    boolean isDualBandSupported();
    boolean saveConfiguration();
    DhcpInfo getDhcpInfo();
    boolean isScanAlwaysAvailable();
    @record {
        @drop this;
        @if binder;
        @replayproxy \
            flux.recordreplay.Proxies.wifiLockAcquire;
    }
    boolean acquireWifiLock(in IBinder binder, int lockType, String tag, in WorkSource ws);
    @record {
        @drop this;
        @if binder;
    }
    void updateWifiLockWorkSource(in IBinder binder, in WorkSource ws);
    @record {
        @drop this, acquireWifiLock;
        @if binder;
    }
    boolean releaseWifiLock(in IBinder binder);
    void initializeMulticastFiltering();
    boolean isMulticastEnabled();
    @record {
        @drop this;
    }
    void acquireMulticastLock(in IBinder binder, String tag);
    @record {
        @drop this, acquireMulticastLock;
    }
    void releaseMulticastLock();
    @record {
        @drop this;
        @if enable;
        @replayproxy flux.recordreplay.Proxies.wifiApSet;
    }
    void setWifiApEnabled(in WifiConfiguration wifiConfig, boolean enable);
    int getWifiApEnabledState();
    WifiConfiguration getWifiApConfiguration();
    void setWifiApConfiguration(in WifiConfiguration wifiConfig);
    void startWifi();
    void stopWifi();
    void addToBlacklist(String bssid);
    void clearBlacklist();
    Messenger getWifiServiceMessenger();
    String getConfigFile();
    void enableTdls(String remoteIPAddress, boolean enable);
    void enableTdlsWithMacAddress(String remoteMacAddress, boolean enable);
    boolean requestBatchedScan(in BatchedScanSettings requested, in IBinder binder, in WorkSource ws);
    void stopBatchedScan(in BatchedScanSettings requested);
    List<BatchedScanResult> getBatchedScanResults(String callingPackage);
    boolean isBatchedScanSupported();
    void enableAggressiveHandover(int enabled);
    int getAggressiveHandover();
    void setAllowScansWithTraffic(int enabled);
    int getAllowScansWithTraffic();
    String getWpsNfcConfigurationToken(int netId);
    boolean startWps(in WpsInfo config);
}
