// InputMethodManagerService, Flux-decorated. The bound input connection
// and the soft-input visibility the app asked for must be re-established
// on the guest (with its own IME), so client attachment replays through a
// contextualisation proxy.
interface IInputMethodManager {
    List<InputMethodInfo> getInputMethodList();
    List<InputMethodInfo> getEnabledInputMethodList();
    List<InputMethodSubtype> getEnabledInputMethodSubtypeList(String imiId, boolean allowsImplicitlySelectedSubtypes);
    InputMethodSubtype getLastInputMethodSubtype();
    List getShortcutInputMethodsAndSubtypes();
    @record {
        @drop this;
        @if client;
        @replayproxy \
            flux.recordreplay.Proxies.imeAddClient;
    }
    void addClient(in IInputMethodClient client, in IInputContext inputContext, int uid, int pid);
    @record {
        @drop this, addClient, startInput,
              showSoftInput, hideSoftInput;
        @if client;
    }
    void removeClient(in IInputMethodClient client);
    @record {
        @drop this;
        @if client;
        @replayproxy \
            flux.recordreplay.Proxies.imeStartInput;
    }
    InputBindResult startInput(in IInputMethodClient client, in IInputContext inputContext, in EditorInfo attribute, int controlFlags);
    void finishInput(in IInputMethodClient client);
    @record {
        @drop this;
        @if client;
    }
    boolean showSoftInput(in IInputMethodClient client, int flags, in ResultReceiver resultReceiver);
    @record {
        @drop this, showSoftInput;
        @if client;
    }
    boolean hideSoftInput(in IInputMethodClient client, int flags, in ResultReceiver resultReceiver);
    InputBindResult windowGainedFocus(in IInputMethodClient client, in IBinder windowToken, int controlFlags, int softInputMode, int windowFlags, in EditorInfo attribute, in IInputContext inputContext);
    void showInputMethodPickerFromClient(in IInputMethodClient client);
    void showInputMethodAndSubtypeEnablerFromClient(in IInputMethodClient client, String topId);
    @record {
        @drop this;
        @if id;
    }
    void setInputMethod(in IBinder token, String id);
    @record {
        @drop this;
        @if id;
    }
    void setInputMethodAndSubtype(in IBinder token, String id, in InputMethodSubtype subtype);
    void hideMySoftInput(in IBinder token, int flags);
    void showMySoftInput(in IBinder token, int flags);
    void updateStatusIcon(in IBinder token, String packageName, int iconId);
    void setImeWindowStatus(in IBinder token, int vis, int backDisposition);
    InputMethodSubtype getCurrentInputMethodSubtype();
    boolean setCurrentInputMethodSubtype(in InputMethodSubtype subtype);
    boolean switchToLastInputMethod(in IBinder token);
    boolean switchToNextInputMethod(in IBinder token, boolean onlyCurrentIme);
    boolean shouldOfferSwitchingToNextInputMethod(in IBinder token);
    boolean setInputMethodEnabled(String id, boolean enabled);
    @record {
        @drop this;
        @if id;
    }
    void setAdditionalInputMethodSubtypes(String id, in InputMethodSubtype[] subtypes);
    void notifySuggestionPicked(in SuggestionSpan span, String originalString, int index);
    int getInputMethodWindowVisibleHeight();
}
