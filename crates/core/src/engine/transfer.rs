//! The transfer phase: APK/data verification sync + the chunked radio
//! transfer of the CRIA image — the stage that owns the engine's
//! interaction with [`flux_net`]'s chunked transfer and radio model.
//!
//! Under [`MigrationConfig::pipeline`](crate::MigrationConfig) the
//! compression deferred from the checkpoint stage overlaps the radio in a
//! [`FusedLanes`] window; the busy accounting then charges the air time
//! the radio actually occupied, with the hidden latency carried by
//! `overlap_saved`. Delivered chunks are staged on the guest so a faulted
//! attempt resumes instead of starting over.

use super::failure::StageFailure;
use super::{Stage, StageCtx, StageOutcome};
use crate::migration::{MigrationStage, StageTimes};
use crate::pairing::verify_app;
use flux_net::{ChunkedOutcome, DEFAULT_CHUNK};
use flux_simcore::{FusedLanes, SimDuration, TraceKind};
use flux_telemetry::LaneId;

/// The transfer stage (verification sync + chunked radio transfer).
pub struct Transfer;

impl Stage for Transfer {
    fn name(&self) -> &'static str {
        "transfer"
    }

    fn lane(&self, cx: &StageCtx<'_>) -> LaneId {
        let _ = cx;
        LaneId::WORLD
    }

    fn pending(&self, cx: &StageCtx<'_>) -> bool {
        !cx.prog.transfer_done
    }

    fn times_slot<'t>(&self, times: &'t mut StageTimes) -> Option<&'t mut SimDuration> {
        Some(&mut times.transfer)
    }

    fn run(&self, cx: &mut StageCtx<'_>) -> Result<StageOutcome, StageFailure> {
        let package = cx.mig.package.as_str();
        let t2 = cx.world.clock.now();
        // The verification sync is naturally resumable: files delivered by
        // an earlier attempt classify as up-to-date and ship zero bytes.
        let verify = verify_app(cx.world, cx.mig.home, cx.mig.guest, package)?;
        cx.prog.data_delta += verify.bytes_shipped;
        let ledger = cx.prog.ledger();
        let verify_done = cx.world.clock.now();
        let radio = if cx.mig.cfg.pipeline {
            // Fused window: the compression deferred from the checkpoint
            // stage proceeds on the CPU lane while chunks already go on
            // the air; the radio starts once the first chunk exists.
            // (Deferred compression is not stall-checked — the watchdog
            // guards the dump, which stays in the checkpoint stage.)
            let compress = cx.prog.compress_pending;
            let chunk_count = ledger
                .total()
                .as_u64()
                .div_ceil(DEFAULT_CHUNK.as_u64())
                .max(1);
            let mut fused = FusedLanes::begin(verify_done, compress, chunk_count);
            let radio_start = fused.radio_ready();
            let radio = cx.world.net.transfer_chunked(
                radio_start,
                ledger.total(),
                DEFAULT_CHUNK,
                &cx.mig.home_profile.wifi,
                &cx.mig.guest_profile.wifi,
                cx.prog.delivered_chunks,
                cx.plan,
            );
            fused.run_radio(radio.duration);
            cx.world.clock.advance_to(fused.end());
            cx.world
                .probe
                .record_radio(radio_start, radio.duration, radio.bytes_delivered);
            if compress > SimDuration::ZERO {
                // The deferred compression stays in the checkpoint stage's
                // busy accounting, where the serial engine charges it.
                let (c_start, c_end) = fused.cpu_window();
                cx.world.telemetry.record_complete(
                    cx.mig.home_lane,
                    "criu.compress",
                    c_start,
                    c_end,
                );
                cx.prog.times.checkpoint += compress;
                cx.prog.compress_pending = SimDuration::ZERO;
            }
            cx.prog.times.overlap_saved += fused.overlap_saved();
            radio
        } else {
            let radio = cx.world.net.transfer_chunked(
                verify_done,
                ledger.total(),
                DEFAULT_CHUNK,
                &cx.mig.home_profile.wifi,
                &cx.mig.guest_profile.wifi,
                cx.prog.delivered_chunks,
                cx.plan,
            );
            cx.world.clock.charge(radio.duration);
            cx.world
                .probe
                .record_radio(verify_done, radio.duration, radio.bytes_delivered);
            radio
        };
        cx.prog.delivered_chunks = radio.delivered_chunks;
        for chunk in &radio.chunks {
            cx.world.telemetry.instant(
                LaneId::WORLD,
                TraceKind::Generic,
                "net.chunk",
                chunk.at,
                format!(
                    "{} in {}{}",
                    chunk.bytes,
                    chunk.duration,
                    if chunk.congested { " (congested)" } else { "" }
                ),
            );
        }
        // The flux.net.* counters accumulate per-attempt figures, so over a
        // resumed transfer they sum to the payload exactly once.
        cx.world
            .telemetry
            .counter_add("flux.net.bytes_transferred", radio.bytes_delivered.as_u64());
        cx.world
            .telemetry
            .counter_add("flux.net.chunks_delivered", radio.attempt_chunks() as u64);
        if radio.resumed_chunks > 0 {
            cx.world
                .telemetry
                .counter_add("flux.net.chunks_resumed", radio.resumed_chunks as u64);
        }
        cx.world
            .telemetry
            .counter_add("flux.net.chunks_congested", radio.congested_chunks as u64);
        cx.world
            .telemetry
            .gauge_set("flux.net.goodput_mbps", radio.goodput_mbps);
        // Each congested chunk is one fault event that hit this migration.
        cx.prog.faults += radio.congested_chunks as u32;
        if radio.congested_chunks > 0 {
            cx.world.telemetry.emit_kind(
                cx.world.clock.now(),
                TraceKind::Fault,
                "net.fault",
                format!(
                    "congestion stretched {} of the {} chunks sent this attempt",
                    radio.congested_chunks,
                    radio.attempt_chunks()
                ),
            );
        }
        // Stage what the guest acknowledged so a retry resumes instead of
        // starting over.
        cx.stage_chunks()?;
        // Busy accounting: under the pipeline, the air time the radio
        // occupied rather than the fused window's wall span — the hidden
        // part is what `overlap_saved` carries.
        let now = cx.world.clock.now();
        cx.prog.busy_override = Some(if cx.mig.cfg.pipeline {
            verify_done.since(t2) + radio.duration
        } else {
            now - t2
        });
        match radio.outcome {
            ChunkedOutcome::Complete => {
                cx.prog.transfer_done = true;
                // Chunks the cache lacked are now on the guest: remember
                // them for the next migration of this package.
                cx.insert_cache_misses()?;
                Ok(StageOutcome::Completed)
            }
            ChunkedOutcome::LinkDropped { at } => Err(StageFailure::FaultAborted {
                stage: MigrationStage::Transfer,
                attempts: 0,
                detail: format!(
                    "link dropped at {at} with {}/{} chunks delivered",
                    radio.delivered_chunks, radio.total_chunks
                ),
            }),
        }
    }

    /// Removes the staged chunk prefix; an aborted migration must leave no
    /// image residue on the guest. (The image *cache* deliberately
    /// survives — it is content-addressed, not migration state.)
    fn rollback(&self, cx: &mut StageCtx<'_>) -> Result<(), StageFailure> {
        let dev = cx
            .world
            .device_mut(cx.mig.guest)
            .map_err(|e| StageFailure::RollbackFailed {
                reason: e.to_string(),
            })?;
        let _ = dev.fs.remove(&cx.mig.staged_path);
        cx.prog.delivered_chunks = 0;
        Ok(())
    }
}
