//! Figure 12: overall migration time per app across the four device pairs,
//! plus the §4 success/failure matrix (16 of 18 apps migrate; Facebook and
//! Subway Surfers are refused).

use flux_bench::{run_full_evaluation, Table, PAIR_LABELS};
use flux_workloads::top_apps;

fn main() {
    let eval = run_full_evaluation(42);

    println!("Figure 12: Overall migration times (seconds)\n");
    let mut t = Table::new(&[
        "Application",
        PAIR_LABELS[0],
        PAIR_LABELS[1],
        PAIR_LABELS[2],
        PAIR_LABELS[3],
    ]);
    for spec in top_apps() {
        let mut cells = vec![spec.name.clone()];
        for row in eval.rows_of(&spec.name) {
            cells.push(match &row.outcome {
                Ok(r) => format!("{:.2}", r.stages.total().as_secs_f64()),
                Err(e) => format!("FAILED ({})", short(e)),
            });
        }
        t.row(cells);
    }
    println!("{}", t.render());

    println!(
        "Average total migration time : {:.2} s   (paper: 7.88 s)",
        eval.mean_total().as_secs_f64()
    );
    println!(
        "Average user-perceived time  : {:.2} s   (paper: ~5.8 s)",
        eval.mean_user_perceived().as_secs_f64()
    );
    println!(
        "Migratable apps              : {}/18  (paper: 16/18)",
        eval.migratable_apps().len()
    );
}

fn short(e: &str) -> &str {
    if e.contains("multi-process") {
        "multi-process"
    } else if e.contains("EGL") {
        "preserved EGL context"
    } else {
        e
    }
}
