//! The append-only, segmented event journal.
//!
//! A journal is a directory of segment files named
//! `journal-<first_seq:010>.seg`, each a sequence of CRC-framed payloads
//! (see [`wire`](crate::wire)). Appends go to the newest segment; when it
//! exceeds the configured byte budget a new segment is started, so old
//! history can later be archived or dropped wholesale once a snapshot
//! covers it.
//!
//! ## Recovery contract
//!
//! [`Journal::open`] replays the directory into an in-memory list of event
//! payloads and is *tolerant of torn tails*: the first undecodable frame —
//! wherever it occurs — ends the recovered prefix. The torn segment is
//! truncated back to its valid prefix and any later segments are deleted,
//! so the journal on disk always equals exactly what recovery returned and
//! the next append continues from there. This is the write-ahead-log
//! guarantee the service builds on: an event either survives whole or the
//! journal behaves as if it (and everything after it) was never written —
//! and because the service only acknowledges a request *after* its event
//! is written and synced, an acknowledged request is always in the
//! surviving prefix of any crash the sync survived.

use crate::wire::{scan_frames, write_frame};
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Journal configuration.
#[derive(Debug, Clone, Copy)]
pub struct JournalConfig {
    /// Rotate to a new segment once the current one reaches this many
    /// bytes. The default keeps segments comfortably memory-mappable while
    /// exercising rotation in any non-trivial run.
    pub segment_bytes: u64,
    /// Whether `append` syncs the segment to disk before returning. On is
    /// the write-ahead-log contract; off is for replay/throughput
    /// measurement only.
    pub sync_on_append: bool,
}

impl Default for JournalConfig {
    fn default() -> Self {
        Self {
            segment_bytes: 4 * 1024 * 1024,
            sync_on_append: true,
        }
    }
}

/// An I/O or consistency failure in the journal layer.
#[derive(Debug)]
pub enum JournalError {
    /// An underlying filesystem operation failed.
    Io(std::io::Error),
    /// The directory contains segment files whose names do not parse or
    /// whose first-sequence numbers do not line up contiguously.
    Inconsistent(String),
}

impl std::fmt::Display for JournalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JournalError::Io(e) => write!(f, "journal io: {e}"),
            JournalError::Inconsistent(m) => write!(f, "journal inconsistent: {m}"),
        }
    }
}

impl std::error::Error for JournalError {}

impl From<std::io::Error> for JournalError {
    fn from(e: std::io::Error) -> Self {
        JournalError::Io(e)
    }
}

/// What [`Journal::open`] recovered from disk.
pub struct Recovered {
    /// The journal, positioned to append after the surviving prefix.
    pub journal: Journal,
    /// Every surviving event payload, in append order.
    pub events: Vec<Vec<u8>>,
    /// Number of bytes discarded from a torn tail (0 on a clean open).
    pub truncated_bytes: u64,
    /// Number of whole segments deleted because they followed the tear.
    pub dropped_segments: usize,
}

/// The append handle over a journal directory.
pub struct Journal {
    dir: PathBuf,
    cfg: JournalConfig,
    /// Sequence number of the next event to append (= events recovered +
    /// events appended so far).
    next_seq: u64,
    /// Open handle to the active segment, positioned at its end.
    active: File,
    /// Bytes currently in the active segment.
    active_len: u64,
}

fn segment_name(first_seq: u64) -> String {
    format!("journal-{first_seq:010}.seg")
}

fn parse_segment_name(name: &str) -> Option<u64> {
    name.strip_prefix("journal-")?
        .strip_suffix(".seg")?
        .parse()
        .ok()
}

fn list_segments(dir: &Path) -> Result<Vec<(u64, PathBuf)>, JournalError> {
    let mut segments = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if let Some(first_seq) = parse_segment_name(name) {
            segments.push((first_seq, entry.path()));
        }
    }
    // BTree-style ordering by construction: sort by first sequence number,
    // never by directory iteration order (which the OS does not define).
    segments.sort_by_key(|(seq, _)| *seq);
    Ok(segments)
}

impl Journal {
    /// Opens (creating if necessary) the journal in `dir` and recovers its
    /// surviving event prefix. See the [module docs](self) for the
    /// truncation contract.
    pub fn open(dir: impl Into<PathBuf>, cfg: JournalConfig) -> Result<Recovered, JournalError> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        let segments = list_segments(&dir)?;

        let mut events: Vec<Vec<u8>> = Vec::new();
        let mut truncated_bytes = 0u64;
        let mut dropped_segments = 0usize;
        // (path, valid_len) of the segment the next append goes to.
        let mut active: Option<(PathBuf, u64)> = None;

        let mut torn = false;
        for (idx, (first_seq, path)) in segments.iter().enumerate() {
            if torn {
                // Everything after a tear is unreachable history: delete it
                // so disk state equals recovered state.
                let len = std::fs::metadata(path)?.len();
                truncated_bytes += len;
                dropped_segments += 1;
                std::fs::remove_file(path)?;
                continue;
            }
            if *first_seq != events.len() as u64 {
                return Err(JournalError::Inconsistent(format!(
                    "segment {} starts at seq {first_seq}, expected {}",
                    path.display(),
                    events.len()
                )));
            }
            let bytes = std::fs::read(path)?;
            let (payloads, valid_end) = scan_frames(&bytes);
            events.extend(payloads.iter().map(|p| p.to_vec()));
            if valid_end < bytes.len() {
                torn = true;
                truncated_bytes += (bytes.len() - valid_end) as u64;
                let file = OpenOptions::new().write(true).open(path)?;
                file.set_len(valid_end as u64)?;
                file.sync_all()?;
            }
            let is_last_surviving = torn || idx == segments.len() - 1;
            if is_last_surviving {
                active = Some((path.clone(), valid_end as u64));
            }
        }

        let next_seq = events.len() as u64;
        let (active_path, active_len) = match active {
            Some(a) => a,
            None => (dir.join(segment_name(0)), 0),
        };
        let active_file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&active_path)?;

        Ok(Recovered {
            journal: Journal {
                dir,
                cfg,
                next_seq,
                active: active_file,
                active_len,
            },
            events,
            truncated_bytes,
            dropped_segments,
        })
    }

    /// Appends one event payload, returning its sequence number.
    ///
    /// When [`JournalConfig::sync_on_append`] is set (the default) the
    /// frame is flushed and fsynced before this returns — the caller may
    /// acknowledge the event to the outside world once this call comes
    /// back.
    pub fn append(&mut self, payload: &[u8]) -> Result<u64, JournalError> {
        if self.active_len >= self.cfg.segment_bytes {
            self.rotate()?;
        }
        let mut frame = Vec::with_capacity(payload.len() + crate::wire::FRAME_HEADER);
        write_frame(&mut frame, payload);
        self.active.write_all(&frame)?;
        if self.cfg.sync_on_append {
            self.active.sync_data()?;
        }
        self.active_len += frame.len() as u64;
        let seq = self.next_seq;
        self.next_seq += 1;
        Ok(seq)
    }

    /// Forces any buffered appends to disk.
    pub fn sync(&mut self) -> Result<(), JournalError> {
        self.active.sync_data()?;
        Ok(())
    }

    /// Sequence number the next append will receive (= events on disk).
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// The directory this journal lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Segment files currently on disk, ascending by first sequence.
    pub fn segment_paths(&self) -> Result<Vec<PathBuf>, JournalError> {
        Ok(list_segments(&self.dir)?
            .into_iter()
            .map(|(_, p)| p)
            .collect())
    }

    fn rotate(&mut self) -> Result<(), JournalError> {
        self.active.sync_data()?;
        let first_seq = self.next_seq;
        let path = self.dir.join(segment_name(first_seq));
        self.active = OpenOptions::new().create(true).append(true).open(path)?;
        self.active_len = 0;
        Ok(())
    }

    /// Total journal size in bytes across all segments.
    pub fn size_bytes(&self) -> Result<u64, JournalError> {
        let mut total = 0;
        for path in self.segment_paths()? {
            total += std::fs::metadata(path)?.len();
        }
        Ok(total)
    }
}

/// Truncates the journal directory's *logical byte stream* at `offset`,
/// simulating a crash that lost everything after that point.
///
/// The stream is the concatenation of all segment files in sequence order.
/// Segments entirely past the offset are deleted; the segment containing
/// it is cut. Used by the crash-recovery tests and the kill-at-offset CI
/// matrix; a real kill can only lose an *unsynced suffix*, so testing
/// arbitrary prefix cuts is strictly stronger.
pub fn truncate_stream_at(dir: &Path, offset: u64) -> Result<(), JournalError> {
    let mut remaining = offset;
    for (_, path) in list_segments(dir)? {
        let len = std::fs::metadata(&path)?.len();
        if remaining >= len {
            remaining -= len;
            continue;
        }
        if remaining == 0 {
            std::fs::remove_file(&path)?;
        } else {
            let file = OpenOptions::new().write(true).open(&path)?;
            file.set_len(remaining)?;
            file.sync_all()?;
            remaining = 0;
        }
    }
    Ok(())
}

/// Total logical stream length of the journal in `dir` (for choosing
/// truncation offsets).
pub fn stream_len(dir: &Path) -> Result<u64, JournalError> {
    let mut total = 0;
    for (_, path) in list_segments(dir)? {
        total += std::fs::metadata(&path)?.len();
    }
    Ok(total)
}

/// Reads the raw logical stream (for tests that corrupt specific bytes).
pub fn read_stream(dir: &Path) -> Result<Vec<u8>, JournalError> {
    let mut out = Vec::new();
    for (_, path) in list_segments(dir)? {
        let mut f = File::open(&path)?;
        f.seek(SeekFrom::Start(0))?;
        f.read_to_end(&mut out)?;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("flux-journal-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn open(dir: &Path, segment_bytes: u64) -> Recovered {
        Journal::open(
            dir,
            JournalConfig {
                segment_bytes,
                sync_on_append: false,
            },
        )
        .expect("journal opens")
    }

    #[test]
    fn append_then_reopen_recovers_everything() {
        let dir = tmp_dir("reopen");
        {
            let mut j = open(&dir, 1 << 20).journal;
            for i in 0..10u32 {
                j.append(format!("event-{i}").as_bytes()).unwrap();
            }
            j.sync().unwrap();
        }
        let rec = open(&dir, 1 << 20);
        assert_eq!(rec.events.len(), 10);
        assert_eq!(rec.events[7], b"event-7");
        assert_eq!(rec.journal.next_seq(), 10);
        assert_eq!(rec.truncated_bytes, 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rotation_splits_segments_and_recovery_reads_across_them() {
        let dir = tmp_dir("rotate");
        {
            // Tiny budget: every append after the first rotates.
            let mut j = open(&dir, 16).journal;
            for i in 0..8u32 {
                j.append(format!("payload-{i}").as_bytes()).unwrap();
            }
            j.sync().unwrap();
        }
        let rec = open(&dir, 16);
        assert!(
            rec.journal.segment_paths().unwrap().len() > 1,
            "expected multiple segments"
        );
        assert_eq!(rec.events.len(), 8);
        assert_eq!(rec.events[5], b"payload-5");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncation_at_any_offset_recovers_a_prefix_and_rewrites_disk() {
        let dir = tmp_dir("truncate");
        let reference: Vec<Vec<u8>> = (0..6u32)
            .map(|i| format!("evt-{i}-{}", "x".repeat(i as usize)).into_bytes())
            .collect();
        {
            let mut j = open(&dir, 40).journal;
            for e in &reference {
                j.append(e).unwrap();
            }
            j.sync().unwrap();
        }
        let total = stream_len(&dir).unwrap();
        for cut in (0..=total).step_by(3) {
            let work = tmp_dir("truncate-work");
            copy_dir(&dir, &work);
            truncate_stream_at(&work, cut).unwrap();
            let rec = open(&work, 40);
            // The recovered events are a prefix of the reference.
            assert!(rec.events.len() <= reference.len());
            assert_eq!(rec.events[..], reference[..rec.events.len()]);
            // Disk now equals the recovered prefix: a second open is clean.
            let again = open(&work, 40);
            assert_eq!(again.events, rec.events);
            assert_eq!(again.truncated_bytes, 0);
            // And the journal keeps working after recovery.
            let mut j = again.journal;
            let seq = j.append(b"after-recovery").unwrap();
            assert_eq!(seq, rec.events.len() as u64);
            std::fs::remove_dir_all(&work).unwrap();
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bit_flip_mid_stream_truncates_from_the_flip() {
        let dir = tmp_dir("bitflip");
        {
            let mut j = open(&dir, 1 << 20).journal;
            for i in 0..5u32 {
                j.append(format!("record-{i}").as_bytes()).unwrap();
            }
            j.sync().unwrap();
        }
        // Corrupt a byte inside the third frame's payload.
        let path = &list_segments(&dir).unwrap()[0].1;
        let mut bytes = std::fs::read(path).unwrap();
        let frame = crate::wire::FRAME_HEADER + b"record-0".len();
        bytes[2 * frame + crate::wire::FRAME_HEADER + 2] ^= 0x01;
        std::fs::write(path, &bytes).unwrap();
        let rec = open(&dir, 1 << 20);
        assert_eq!(rec.events.len(), 2);
        assert!(rec.truncated_bytes > 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    fn copy_dir(from: &Path, to: &Path) {
        std::fs::create_dir_all(to).unwrap();
        for entry in std::fs::read_dir(from).unwrap() {
            let entry = entry.unwrap();
            std::fs::copy(entry.path(), to.join(entry.file_name())).unwrap();
        }
    }
}
