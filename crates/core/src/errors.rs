//! The unified error type for the public Flux API.
//!
//! Lower layers keep their own focused error enums ([`WorldError`],
//! [`StageFailure`], [`BinderError`]); everything user-facing —
//! [`FluxWorld::app_call`](crate::FluxWorld::app_call),
//! [`FluxWorld::perform`](crate::FluxWorld::perform),
//! [`migrate`](crate::migrate), [`pair`](crate::pair) and the
//! [`WorldBuilder`](crate::WorldBuilder) — returns [`FluxError`], which
//! wraps them with stable `From` impls and `source()` chaining.

use crate::engine::StageFailure;
use crate::world::WorldError;
use flux_binder::BinderError;
use std::error::Error;
use std::fmt;

/// Any failure surfaced by the public Flux API.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum FluxError {
    /// An environment-level failure: unknown device or app, service boot,
    /// delivery routing.
    World(WorldError),
    /// A migration was refused (§3.3–3.4) or failed and was rolled back.
    Migration(StageFailure),
    /// A raw Binder-level failure outside any other context.
    Binder(BinderError),
    /// A world was configured inconsistently (builder validation).
    Config(String),
    /// An error read back from a serialized report (journal recovery,
    /// snapshot restore). Errors serialize as their [`fmt::Display`]
    /// string, so the enum structure is not recoverable; the raw string is
    /// carried verbatim, and re-serializing reproduces the original bytes.
    Recovered(String),
}

impl fmt::Display for FluxError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FluxError::World(e) => write!(f, "{e}"),
            FluxError::Migration(e) => write!(f, "{e}"),
            FluxError::Binder(e) => write!(f, "binder: {e}"),
            FluxError::Config(m) => write!(f, "world configuration: {m}"),
            FluxError::Recovered(m) => f.write_str(m),
        }
    }
}

/// Serializes as the [`fmt::Display`] string — reports embed errors as
/// human-readable reasons, not as a machine-matchable enum tree.
impl serde::Serialize for FluxError {
    fn serialize(&self, out: &mut String) {
        serde::Serialize::serialize(&self.to_string(), out);
    }
}

/// Deserializes from the Display string into [`FluxError::Recovered`]; the
/// round-trip back to JSON is byte-identical even though the original
/// variant is gone.
impl<'de> serde::Deserialize<'de> for FluxError {
    fn deserialize(v: &serde::JsonValue) -> Result<Self, serde::DeError> {
        String::deserialize(v).map(FluxError::Recovered)
    }
}

impl Error for FluxError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            FluxError::World(e) => Some(e),
            FluxError::Migration(e) => Some(e),
            FluxError::Binder(e) => Some(e),
            FluxError::Config(_) | FluxError::Recovered(_) => None,
        }
    }
}

impl From<WorldError> for FluxError {
    fn from(e: WorldError) -> Self {
        FluxError::World(e)
    }
}

impl From<StageFailure> for FluxError {
    fn from(e: StageFailure) -> Self {
        FluxError::Migration(e)
    }
}

impl From<BinderError> for FluxError {
    fn from(e: BinderError) -> Self {
        FluxError::Binder(e)
    }
}

impl FluxError {
    /// The migration refusal/failure inside, if that is what this is.
    pub fn as_migration(&self) -> Option<&StageFailure> {
        match self {
            FluxError::Migration(e) => Some(e),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_impls_wrap_each_layer() {
        let w: FluxError = WorldError::NoSuchDevice(3).into();
        assert_eq!(w, FluxError::World(WorldError::NoSuchDevice(3)));
        let m: FluxError = StageFailure::NotPaired.into();
        assert!(m.as_migration().is_some());
        let b: FluxError = BinderError::NoSuchService {
            name: "window".into(),
        }
        .into();
        assert!(matches!(b, FluxError::Binder(_)));
    }

    #[test]
    fn source_chains_to_the_wrapped_error() {
        let e: FluxError = StageFailure::NotPaired.into();
        let src = e.source().expect("has a source");
        assert_eq!(src.to_string(), StageFailure::NotPaired.to_string());
        assert!(FluxError::Config("bad".into()).source().is_none());
    }

    #[test]
    fn display_forwards_the_inner_message() {
        let e: FluxError = StageFailure::MultiProcess { processes: 2 }.into();
        assert!(e.to_string().contains("multi-process"));
    }

    #[test]
    fn serialized_error_round_trips_byte_identically() {
        let original: FluxError = StageFailure::NotPaired.into();
        let json = serde::to_json(&original);
        let back: FluxError = serde::from_json(&json).expect("parses");
        assert_eq!(back, FluxError::Recovered(original.to_string()));
        assert_eq!(serde::to_json(&back), json);
    }
}
