//! Shared world-staging helpers for the integration suite.
//!
//! Every migration-flavoured test boots the same shape of world: a home
//! and a guest device, one Table 3 app deployed on the home, its canned
//! workload run, and the pair established. These helpers centralise that
//! staging so seeds, device names ("h" and "g" — the `/data/flux/h/...`
//! staging paths in several tests depend on the former) and fault-plan
//! wiring stay consistent across test binaries.
//!
//! Each integration-test binary compiles this module independently and
//! uses a different subset of it, hence the file-wide `dead_code` allow.
#![allow(dead_code)]

use flux_core::{pair, DeviceId, FluxWorld, WorldBuilder};
use flux_device::{DeviceModel, DeviceProfile};
use flux_kernel::Kernel;
use flux_net::{WifiAdapter, WifiStandard};
use flux_simcore::{FaultEvent, FaultKind, FaultPlan, SimDuration, SimTime, Uid};
use flux_workloads::{spec, AppSpec};

/// The suite's default seed for single-scenario (non-proptest) stagings.
pub const SEED: u64 = 1234;

/// System services the record/replay and CRIU tests register.
pub const SERVICE_NAMES: [&str; 5] = ["notification", "alarm", "audio", "wifi", "clipboard"];

/// The most general staging: boots a two-device world (`h` home, `g`
/// guest), installs `app_name` on the home, runs its Table 3 workload,
/// and pairs the devices. Returns the world, both device ids and the
/// package name.
pub fn staged_with(
    app_name: &str,
    seed: u64,
    home_model: DeviceModel,
    guest_model: DeviceModel,
    plan: FaultPlan,
) -> (FluxWorld, DeviceId, DeviceId, String) {
    let app = spec(app_name).expect("app in Table 3");
    let (mut world, ids) = WorldBuilder::new()
        .seed(seed)
        .fault_plan(plan)
        .device("h", DeviceProfile::of(home_model))
        .device("g", DeviceProfile::of(guest_model))
        .app(0, app.clone())
        .build()
        .unwrap();
    let (home, guest) = (ids[0], ids[1]);
    world
        .run_script(home, &app.package, &app.actions.clone())
        .unwrap();
    pair(&mut world, home, guest).unwrap();
    (world, home, guest, app.package.clone())
}

/// Stages an arbitrary [`AppSpec`] — e.g. a generated corpus profile —
/// on the standard pair (`h` Nexus 4 home, `g` Nexus 7 (2013) guest):
/// deploys it on the home, runs its action script and pairs the devices.
pub fn staged_app(
    app: &AppSpec,
    seed: u64,
    plan: FaultPlan,
) -> (FluxWorld, DeviceId, DeviceId, String) {
    let (mut world, ids) = WorldBuilder::new()
        .seed(seed)
        .fault_plan(plan)
        .device("h", DeviceProfile::nexus4())
        .device("g", DeviceProfile::nexus7_2013())
        .app(0, app.clone())
        .build()
        .unwrap();
    let (home, guest) = (ids[0], ids[1]);
    world
        .run_script(home, &app.package, &app.actions.clone())
        .unwrap();
    pair(&mut world, home, guest).unwrap();
    (world, home, guest, app.package.clone())
}

/// The standard pair — Nexus 4 home, Nexus 7 (2013) guest — fault-free.
pub fn staged(app_name: &str, seed: u64) -> (FluxWorld, DeviceId, DeviceId, String) {
    staged_with(
        app_name,
        seed,
        DeviceModel::Nexus4,
        DeviceModel::Nexus7_2013,
        FaultPlan::none(),
    )
}

/// The standard pair with an ambient fault plan installed.
pub fn staged_faulty(
    app_name: &str,
    seed: u64,
    plan: FaultPlan,
) -> (FluxWorld, DeviceId, DeviceId, String) {
    staged_with(
        app_name,
        seed,
        DeviceModel::Nexus4,
        DeviceModel::Nexus7_2013,
        plan,
    )
}

/// Arbitrary device models at the suite's default seed.
pub fn staged_models(
    app_name: &str,
    home_model: DeviceModel,
    guest_model: DeviceModel,
) -> (FluxWorld, DeviceId, DeviceId, String) {
    staged_with(app_name, SEED, home_model, guest_model, FaultPlan::none())
}

/// A bare two-device Nexus 7 (2013) world — no app, no workload, no
/// pairing — for tests that shape app state by hand.
pub fn bare_pair(seed: u64) -> (FluxWorld, DeviceId, DeviceId) {
    let (world, ids) = WorldBuilder::new()
        .seed(seed)
        .device("h", DeviceProfile::nexus7_2013())
        .device("g", DeviceProfile::nexus7_2013())
        .build()
        .unwrap();
    (world, ids[0], ids[1])
}

/// A bare single-device Nexus 7 (2013) world.
pub fn bare_device(seed: u64) -> (FluxWorld, DeviceId) {
    let (world, ids) = WorldBuilder::new()
        .seed(seed)
        .device("h", DeviceProfile::nexus7_2013())
        .build()
        .unwrap();
    (world, ids[0])
}

/// A fleet staging: one home/guest device pair per app name (Nexus 4 →
/// Nexus 7 (2013)), each app deployed, scripted and paired on its own
/// pair. Returns the world and `(home, guest, package)` per request.
pub fn fleet_world(
    app_names: &[&str],
    seed: u64,
) -> (FluxWorld, Vec<(DeviceId, DeviceId, String)>) {
    let apps: Vec<_> = app_names
        .iter()
        .map(|n| spec(n).expect("app in Table 3"))
        .collect();
    let mut builder = WorldBuilder::new().seed(seed);
    for (i, app) in apps.iter().enumerate() {
        builder = builder
            .device(&format!("h{i:02}"), DeviceProfile::nexus4())
            .device(&format!("g{i:02}"), DeviceProfile::nexus7_2013())
            .app(2 * i, app.clone());
    }
    let (mut world, ids) = builder.build().unwrap();
    let mut pairs = Vec::with_capacity(apps.len());
    for (i, app) in apps.iter().enumerate() {
        let (home, guest) = (ids[2 * i], ids[2 * i + 1]);
        world
            .run_script(home, &app.package, &app.actions.clone())
            .unwrap();
        pair(&mut world, home, guest).unwrap();
        pairs.push((home, guest, app.package.clone()));
    }
    (world, pairs)
}

/// A shared-home fleet staging: one home device carrying every app,
/// paired to one guest per app — the device-contention counterpart of
/// [`fleet_world`]. Returns the world and `(home, guest, package)` per
/// request; every request shares the same source device, so a fleet
/// scheduler must serialise them.
pub fn shared_home_world(
    app_names: &[&str],
    seed: u64,
) -> (FluxWorld, Vec<(DeviceId, DeviceId, String)>) {
    let apps: Vec<_> = app_names
        .iter()
        .map(|n| spec(n).expect("app in Table 3"))
        .collect();
    let mut builder = WorldBuilder::new()
        .seed(seed)
        .device("h", DeviceProfile::nexus4());
    for (i, app) in apps.iter().enumerate() {
        builder = builder
            .device(&format!("g{i:02}"), DeviceProfile::nexus7_2013())
            .app(0, app.clone());
    }
    let (mut world, ids) = builder.build().unwrap();
    let home = ids[0];
    let mut pairs = Vec::with_capacity(apps.len());
    for (i, app) in apps.iter().enumerate() {
        world
            .run_script(home, &app.package, &app.actions.clone())
            .unwrap();
        let guest = ids[i + 1];
        pair(&mut world, home, guest).unwrap();
        pairs.push((home, guest, app.package.clone()));
    }
    (world, pairs)
}

/// A blanket link-drop schedule (every 200 ms for two minutes, relative
/// to the migration's own start): whatever instant the victim's transfer
/// covers, a drop lands in it, so with a no-retry policy the migration
/// deterministically rolls back.
pub fn blanket_drops() -> FaultPlan {
    FaultPlan::from_events(
        (0..600)
            .map(|i| FaultEvent {
                at: SimTime::from_millis(i * 200),
                kind: FaultKind::LinkDrop,
                duration: SimDuration::ZERO,
                magnitude: 0.0,
            })
            .collect(),
    )
}

/// A kernel of the given version with a system server exporting the
/// standard service nodes — the prelude every kernel-level CRIU property
/// test starts from, on both the home ("3.1") and guest ("3.4") side.
pub fn kernel_with_services(version: &str) -> Kernel {
    use flux_binder::NodeKind;
    let mut k = Kernel::new(version);
    let sys = k.spawn(Uid::SYSTEM, "system_server");
    for name in SERVICE_NAMES {
        let node = k
            .binder
            .create_node(
                sys,
                NodeKind::Service {
                    descriptor: format!("I{name}"),
                },
            )
            .unwrap();
        k.binder.add_service(name, node).unwrap();
    }
    k
}

/// The campus dual-band 802.11n adapter the transfer property tests use.
pub fn campus_adapter() -> WifiAdapter {
    WifiAdapter {
        standard: WifiStandard::N,
        dual_band: true,
        link_mbps: 65.0,
    }
}
