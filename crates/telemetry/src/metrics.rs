//! Counters, gauges and fixed-bucket histograms.
//!
//! All metrics live in one [`MetricsRegistry`] keyed by name under the
//! `flux.<crate>.<name>` scheme (e.g. `flux.net.bytes_transferred`). The
//! registry stores metrics in a `BTreeMap`, so iteration — and therefore
//! every exporter's output — is in deterministic name order regardless of
//! registration order.

use std::collections::BTreeMap;
use std::fmt;

/// A fixed-bucket histogram over `u64` observations.
///
/// Buckets are cumulative-style: `counts[i]` counts observations `v`
/// with `v <= bounds[i]` that fell in no earlier bucket; the final slot
/// (`counts[bounds.len()]`) is the overflow bucket.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    bounds: Vec<u64>,
    counts: Vec<u64>,
    count: u64,
    sum: u64,
}

impl Histogram {
    /// Creates a histogram with the given ascending upper bounds.
    pub fn new(bounds: &[u64]) -> Self {
        debug_assert!(bounds.windows(2).all(|w| w[0] < w[1]));
        Self {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            count: 0,
            sum: 0,
        }
    }

    /// Default buckets for millisecond-scale latencies: 1ms .. ~2min.
    pub fn default_latency_ms() -> Self {
        Self::new(&[
            1, 2, 5, 10, 25, 50, 100, 250, 500, 1_000, 2_500, 5_000, 10_000, 30_000, 60_000,
            120_000,
        ])
    }

    /// Records one observation.
    pub fn observe(&mut self, value: u64) {
        let slot = self
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(self.bounds.len());
        self.counts[slot] += 1;
        self.count += 1;
        self.sum += value;
    }

    /// Folds `other`'s observations into this histogram. Returns `false`
    /// (and merges nothing) when the bucket bounds differ — merged
    /// histograms must share a bucketing scheme to stay meaningful.
    pub fn merge_from(&mut self, other: &Histogram) -> bool {
        if self.bounds != other.bounds {
            return false;
        }
        for (slot, n) in self.counts.iter_mut().zip(&other.counts) {
            *slot += n;
        }
        self.count += other.count;
        self.sum += other.sum;
        true
    }

    /// Bucket upper bounds.
    pub fn bounds(&self) -> &[u64] {
        &self.bounds
    }

    /// Per-bucket counts; the last entry is the overflow bucket.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observed values.
    pub fn sum(&self) -> u64 {
        self.sum
    }
}

/// One metric value.
#[derive(Debug, Clone, PartialEq)]
pub enum Metric {
    /// Monotonic `u64` counter.
    Counter(u64),
    /// Last-write-wins `f64` gauge.
    Gauge(f64),
    /// Fixed-bucket histogram.
    Histogram(Histogram),
}

impl fmt::Display for Metric {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Metric::Counter(v) => write!(f, "{v}"),
            Metric::Gauge(v) => write!(f, "{v}"),
            Metric::Histogram(h) => write!(f, "count={} sum={}", h.count(), h.sum()),
        }
    }
}

/// A name-ordered registry of metrics. See the [module docs](self).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsRegistry {
    metrics: BTreeMap<String, Metric>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `delta` to the counter `name`, creating it at zero first.
    /// Writing a counter over an existing gauge/histogram replaces it —
    /// names are expected to be used consistently.
    pub fn counter_add(&mut self, name: &str, delta: u64) {
        match self.metrics.get_mut(name) {
            Some(Metric::Counter(v)) => *v += delta,
            _ => {
                self.metrics.insert(name.to_owned(), Metric::Counter(delta));
            }
        }
    }

    /// Sets the counter `name` to an absolute value. Used by idempotent
    /// harvest passes that scrape an already-accumulated counter out of a
    /// component (e.g. the binder driver's transaction count) without
    /// double-counting on repeated harvests.
    pub fn counter_set(&mut self, name: &str, value: u64) {
        self.metrics.insert(name.to_owned(), Metric::Counter(value));
    }

    /// Sets the gauge `name` to `value`.
    pub fn gauge_set(&mut self, name: &str, value: f64) {
        self.metrics.insert(name.to_owned(), Metric::Gauge(value));
    }

    /// Registers a histogram with explicit bucket bounds if `name` is not
    /// already a histogram.
    pub fn register_histogram(&mut self, name: &str, bounds: &[u64]) {
        if !matches!(self.metrics.get(name), Some(Metric::Histogram(_))) {
            self.metrics
                .insert(name.to_owned(), Metric::Histogram(Histogram::new(bounds)));
        }
    }

    /// Observes `value` in the histogram `name`, auto-registering it with
    /// [`Histogram::default_latency_ms`] buckets on first use.
    pub fn observe(&mut self, name: &str, value: u64) {
        if !matches!(self.metrics.get(name), Some(Metric::Histogram(_))) {
            self.metrics.insert(
                name.to_owned(),
                Metric::Histogram(Histogram::default_latency_ms()),
            );
        }
        if let Some(Metric::Histogram(h)) = self.metrics.get_mut(name) {
            h.observe(value);
        }
    }

    /// Folds every metric of `other` into this registry, by kind:
    /// counters add, gauges take `other`'s value (last-write-wins, with the
    /// absorbed registry as the later writer), histograms merge bucket-wise
    /// when the bounds agree. On a kind mismatch — or a histogram bounds
    /// mismatch — `other`'s value replaces this one, mirroring what
    /// replaying `other`'s writes against this registry would do.
    pub fn merge_from(&mut self, other: &MetricsRegistry) {
        for (name, theirs) in &other.metrics {
            let merged = match (self.metrics.get_mut(name), theirs) {
                (Some(Metric::Counter(mine)), Metric::Counter(v)) => {
                    *mine += v;
                    true
                }
                (Some(Metric::Histogram(mine)), Metric::Histogram(h)) => mine.merge_from(h),
                _ => false,
            };
            if !merged {
                self.metrics.insert(name.clone(), theirs.clone());
            }
        }
    }

    /// The value of counter `name`, or 0 if absent or not a counter.
    pub fn counter(&self, name: &str) -> u64 {
        match self.metrics.get(name) {
            Some(Metric::Counter(v)) => *v,
            _ => 0,
        }
    }

    /// The value of gauge `name`, if present.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        match self.metrics.get(name) {
            Some(Metric::Gauge(v)) => Some(*v),
            _ => None,
        }
    }

    /// The histogram `name`, if present.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        match self.metrics.get(name) {
            Some(Metric::Histogram(h)) => Some(h),
            _ => None,
        }
    }

    /// Looks up any metric by name.
    pub fn get(&self, name: &str) -> Option<&Metric> {
        self.metrics.get(name)
    }

    /// Iterates metrics in deterministic (name) order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Metric)> {
        self.metrics.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Number of registered metrics.
    pub fn len(&self) -> usize {
        self.metrics.len()
    }

    /// Whether no metrics are registered.
    pub fn is_empty(&self) -> bool {
        self.metrics.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut m = MetricsRegistry::new();
        m.counter_add("flux.fs.files_shipped", 3);
        m.counter_add("flux.fs.files_shipped", 4);
        assert_eq!(m.counter("flux.fs.files_shipped"), 7);
        assert_eq!(m.counter("flux.fs.absent"), 0);
    }

    #[test]
    fn gauges_last_write_wins() {
        let mut m = MetricsRegistry::new();
        m.gauge_set("flux.net.goodput_mbps", 10.5);
        m.gauge_set("flux.net.goodput_mbps", 42.25);
        assert_eq!(m.gauge("flux.net.goodput_mbps"), Some(42.25));
    }

    #[test]
    fn histogram_buckets_observations() {
        let mut h = Histogram::new(&[10, 100]);
        h.observe(5);
        h.observe(10);
        h.observe(50);
        h.observe(1_000);
        assert_eq!(h.counts(), &[2, 1, 1]);
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 1_065);
    }

    #[test]
    fn observe_auto_registers_default_buckets() {
        let mut m = MetricsRegistry::new();
        m.observe("flux.migration.total_ms", 750);
        let h = m.histogram("flux.migration.total_ms").unwrap();
        assert_eq!(h.count(), 1);
        assert_eq!(h.sum(), 750);
    }

    #[test]
    fn iteration_is_name_ordered_regardless_of_insertion() {
        let mut m = MetricsRegistry::new();
        m.counter_add("flux.z", 1);
        m.counter_add("flux.a", 1);
        m.gauge_set("flux.m", 0.0);
        let names: Vec<&str> = m.iter().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["flux.a", "flux.m", "flux.z"]);
    }

    #[test]
    fn register_histogram_keeps_existing() {
        let mut m = MetricsRegistry::new();
        m.register_histogram("flux.h", &[1, 2]);
        m.observe("flux.h", 2);
        m.register_histogram("flux.h", &[99]);
        assert_eq!(m.histogram("flux.h").unwrap().bounds(), &[1, 2]);
    }
}
