//! Errors raised by the simulated Binder driver.

use crate::parcel::ParcelError;
use flux_simcore::Pid;
use std::fmt;

/// An error from a Binder operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BinderError {
    /// The caller used a handle that is not in its handle table.
    BadHandle {
        /// The offending caller.
        pid: Pid,
        /// The handle that was not found.
        handle: u32,
    },
    /// The target node no longer exists (owner died).
    DeadNode {
        /// Id of the dead node.
        node: u64,
    },
    /// No service is registered under the given name.
    NoSuchService {
        /// The requested service name.
        name: String,
    },
    /// A service with this name is already registered.
    ServiceExists {
        /// The duplicate name.
        name: String,
    },
    /// The caller is not allowed to perform the operation.
    PermissionDenied {
        /// Human-readable reason.
        reason: String,
    },
    /// The target process is unknown to the driver.
    NoSuchProcess {
        /// The unknown PID.
        pid: Pid,
    },
    /// An interface rejected the transaction (unknown method, bad args…).
    TransactionFailed {
        /// Interface descriptor, e.g. `android.app.INotificationManager`.
        interface: String,
        /// Method that failed.
        method: String,
        /// Reason from the service.
        reason: String,
    },
    /// A parcel could not be read.
    Parcel(ParcelError),
    /// A handle id collision while injecting restored state.
    HandleCollision {
        /// The process being restored into.
        pid: Pid,
        /// The colliding handle id.
        handle: u32,
    },
}

impl fmt::Display for BinderError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BinderError::BadHandle { pid, handle } => {
                write!(f, "{pid} holds no reference for handle {handle}")
            }
            BinderError::DeadNode { node } => write!(f, "binder node {node} is dead"),
            BinderError::NoSuchService { name } => {
                write!(f, "service manager has no entry for {name:?}")
            }
            BinderError::ServiceExists { name } => {
                write!(f, "service {name:?} is already registered")
            }
            BinderError::PermissionDenied { reason } => write!(f, "permission denied: {reason}"),
            BinderError::NoSuchProcess { pid } => write!(f, "unknown process {pid}"),
            BinderError::TransactionFailed {
                interface,
                method,
                reason,
            } => write!(f, "{interface}.{method} failed: {reason}"),
            BinderError::Parcel(e) => write!(f, "parcel error: {e}"),
            BinderError::HandleCollision { pid, handle } => {
                write!(f, "handle {handle} already present in {pid} during restore")
            }
        }
    }
}

impl std::error::Error for BinderError {}

impl From<ParcelError> for BinderError {
    fn from(e: ParcelError) -> Self {
        BinderError::Parcel(e)
    }
}
