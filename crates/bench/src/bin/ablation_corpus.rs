//! Corpus ablation: Play-store-scale scenario sweep under the lifecycle
//! data-loss oracle — corpus size × lifecycle schedule × fault plan.
//!
//! Each grid cell generates a seeded [`ProfileCorpus`] (10k–50k full app
//! profiles, sizes and component mixes fitted to the paper's fig. 13/15
//! shapes), samples a deterministic slice of it — evenly spaced ids plus
//! a stratified oversample of the rare refusable minorities
//! (EGL-preserving, multi-process, high-API) so every taxonomy class gets
//! exercised at bench scale — and stages one Nexus 4 → Nexus 7 (2013)
//! pair per sampled profile. The oracle captures each app's promised
//! state, the cell's lifecycle schedule perturbs it (pause / stop / kill
//! between capture and migrate), fault cells give every fifth request a
//! blanket link-drop plan with no retries, and the whole batch drives
//! through the [`FleetScheduler`]. Every flight's terminal world is then
//! judged by [`OracleSnapshot::verdict_for`] and tallied into the
//! five-class failure [`Taxonomy`] (lost-write / stale-replay /
//! rollback-residue / egl-context / incompatible-feature).
//!
//! The binary self-verifies three ways:
//!
//! * the whole grid runs twice and the JSON artifact must come out
//!   byte-identical — corpus generation and scenario scheduling must not
//!   cost determinism;
//! * one cell per corpus size re-runs under the `ParallelExecutor` and
//!   both its fleet report JSON and its taxonomy JSON must be
//!   byte-identical to the serial run's;
//! * the aggregate taxonomy must be non-degenerate (at least three
//!   distinct classes populated) and the generated census must sit in
//!   the paper's fig. 13 quantile bands.
//!
//! Artifacts: `BENCH_corpus.json` (the machine-readable grid) and
//! `ablation_corpus.txt` (the rendered table), written to `--out`
//! (default the working directory).
//!
//! ```text
//! ablation_corpus [--smoke] [--out DIR]
//! ```
//!
//! `--smoke` is the CI size: the 10k-profile row with half the sample.

use flux_core::{
    pair, FleetConfig, FleetScheduler, LifecycleEvent, LifecycleSchedule, MigrationConfig,
    MigrationRequest, MigrationStage, OracleSnapshot, ParallelExecutor, RetryPolicy, Taxonomy,
    WorldBuilder,
};
use flux_device::DeviceProfile;
use flux_playstore::{AppProfile, ProfileCorpus};
use flux_simcore::{FaultEvent, FaultKind, FaultPlan, SimDuration, SimTime};
use std::fmt::Write as _;
use std::process::ExitCode;

/// One seed; the grid is deterministic, the double pass proves it.
const SEED: u64 = 33;
/// Corpus sizes (generated profiles) on the full grid.
const FULL_CORPORA: [usize; 2] = [10_000, 50_000];
/// The CI smoke size.
const SMOKE_CORPORA: [usize; 1] = [10_000];
/// The lifecycle axis: the three pre-migration schedules that differ
/// observably at fleet scale (pause and stop both flush; stop stands in
/// for either), plus the mid-migration cell — a kill landed inside the
/// preparation stage, the Riganelli window only the interruptible
/// engine reaches.
const SCHEDULES: [LifecycleSchedule; 4] = [
    LifecycleSchedule::Undisturbed,
    LifecycleSchedule::StopThenMigrate,
    LifecycleSchedule::KillThenMigrate,
    LifecycleSchedule::At {
        stage: MigrationStage::Preparation,
        offset: SimDuration::from_millis(1),
        event: LifecycleEvent::Kill,
    },
];
/// Migrated scenarios per cell (full / smoke), before stratification.
const FULL_SAMPLE: usize = 96;
const SMOKE_SAMPLE: usize = 48;
/// Stratified oversample cap per refusable minority.
const STRATUM: usize = 8;
/// In fault cells, every DROP_EVERY-th request gets blanket drops.
const DROP_EVERY: u64 = 5;
/// The guest fleet's API level (every profile above it must refuse).
const GUEST_API: u32 = 19;

/// A blanket link-drop schedule relative to each victim's own migration
/// start: with a no-retry policy the migration deterministically rolls
/// back mid-transfer.
fn blanket_drops() -> FaultPlan {
    FaultPlan::from_events(
        (0..600)
            .map(|i| FaultEvent {
                at: SimTime::from_millis(i * 200),
                kind: FaultKind::LinkDrop,
                duration: SimDuration::ZERO,
                magnitude: 0.0,
            })
            .collect(),
    )
}

/// The cell's scenario slice: `n` evenly spaced ids plus up to
/// [`STRATUM`] ids from each refusable minority, deduplicated in order.
fn sampled_ids(corpus: &ProfileCorpus, n: usize) -> Vec<u32> {
    let mut ids = corpus.sample_ids(n);
    for stratum in [
        corpus.find_ids(STRATUM, |p: &AppProfile| p.spec.preserve_egl),
        corpus.find_ids(STRATUM, |p: &AppProfile| p.spec.multi_process),
        corpus.find_ids(STRATUM, |p: &AppProfile| p.spec.min_api > GUEST_API),
        corpus.find_ids(STRATUM, |p: &AppProfile| p.holds_open_incompatibility()),
    ] {
        for id in stratum {
            if !ids.contains(&id) {
                ids.push(id);
            }
        }
    }
    ids
}

/// One grid cell's tallies.
struct Cell {
    corpus: usize,
    schedule: LifecycleSchedule,
    faulty: bool,
    sampled: usize,
    taxonomy: Taxonomy,
    makespan: SimDuration,
}

impl serde::Serialize for Cell {
    fn serialize(&self, out: &mut String) {
        let mut obj = serde::object(out);
        obj.field("corpus", &(self.corpus as u64))
            .field("schedule", &self.schedule.key())
            .field("faults", &self.faulty)
            .field("sampled", &(self.sampled as u64))
            .field("makespan_ns", &self.makespan.as_nanos())
            .field("taxonomy", &self.taxonomy);
        obj.end();
    }
}

/// Runs one (corpus size, schedule, fault plan) cell; `parallel` swaps
/// the default serial executor for [`ParallelExecutor::auto`]. Returns
/// the cell plus the raw fleet-report JSON (for executor identity).
fn run_cell(
    corpus_size: usize,
    sample: usize,
    schedule: LifecycleSchedule,
    faulty: bool,
    parallel: bool,
) -> Result<(Cell, String), String> {
    let corpus = ProfileCorpus::new(SEED, corpus_size);
    let ids = sampled_ids(&corpus, sample);
    let profiles: Vec<AppProfile> = ids.iter().map(|&id| corpus.profile(id)).collect();

    let mut builder = WorldBuilder::new().seed(SEED);
    for (i, p) in profiles.iter().enumerate() {
        builder = builder
            .device(&format!("phone{i:05}"), DeviceProfile::nexus4())
            .device(&format!("tablet{i:05}"), DeviceProfile::nexus7_2013())
            .app(2 * i, p.spec.clone());
    }
    let (mut world, dev_ids) = builder.build().map_err(|e| e.to_string())?;

    let mut snapshots = Vec::with_capacity(profiles.len());
    let mut requests = Vec::with_capacity(profiles.len());
    for (i, p) in profiles.iter().enumerate() {
        let (home, guest) = (dev_ids[2 * i], dev_ids[2 * i + 1]);
        let pkg = &p.spec.package;
        world
            .run_script(home, pkg, &p.spec.actions.clone())
            .map_err(|e| e.to_string())?;
        pair(&mut world, home, guest).map_err(|e| e.to_string())?;
        // Capture the promise, perturb it, then re-anchor the log length
        // to the migration start (a kill legitimately resets the log).
        let mut snap =
            OracleSnapshot::capture(&world, home, guest, pkg).map_err(|e| e.to_string())?;
        schedule
            .apply(&mut world, home, pkg)
            .map_err(|e| e.to_string())?;
        snap.refresh_log_len(&world);
        snapshots.push(snap);
        let id = i as u64 + 1;
        let mut req = MigrationRequest::new(id, home, guest, pkg);
        // Mid-migration schedules ride the engine's interrupt timeline
        // instead of perturbing the world up front.
        req.interrupts.extend(schedule.interrupts());
        if faulty && id % DROP_EVERY == 0 {
            req = req
                .with_faults(blanket_drops())
                .with_config(MigrationConfig {
                    retry: RetryPolicy::none(),
                    ..MigrationConfig::default()
                });
        }
        requests.push(req);
    }

    let mut scheduler = FleetScheduler::new(FleetConfig {
        max_in_flight: 16,
        ..FleetConfig::default()
    })
    .map_err(|e| e.to_string())?;
    if parallel {
        scheduler = scheduler.with_executor(ParallelExecutor::auto());
    }
    let report = scheduler
        .run(&mut world, requests)
        .map_err(|e| e.to_string())?;

    let mut taxonomy = Taxonomy::default();
    for (flight, snap) in report.flights.iter().zip(&snapshots) {
        taxonomy.record(&snap.verdict_for(&world, &flight.outcome));
    }
    let report_json = serde::to_json(&report);
    Ok((
        Cell {
            corpus: corpus_size,
            schedule,
            faulty,
            sampled: profiles.len(),
            taxonomy,
            makespan: report.makespan,
        },
        report_json,
    ))
}

/// Runs the grid once; returns the cells plus the rendered table.
fn run_grid(corpora: &[usize], sample: usize) -> Result<(Vec<Cell>, String), String> {
    let mut cells = Vec::new();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Corpus ablation: generated profiles, Nexus 4 -> Nexus 7 (2013) pairs, seed {SEED}\n"
    );
    let _ = writeln!(
        out,
        "{:<8} {:<12} {:<7} {:>7} {:>5} {:>5} {:>4} {:>6} {:>6} {:>8} {:>5} {:>7}",
        "corpus",
        "schedule",
        "faults",
        "sampled",
        "done",
        "back",
        "ref",
        "lost",
        "stale",
        "residue",
        "egl",
        "incompat"
    );
    for &corpus in corpora {
        for schedule in SCHEDULES {
            for faulty in [false, true] {
                let (cell, _) = run_cell(corpus, sample, schedule, faulty, false).map_err(|e| {
                    format!("corpus {corpus} {} faults {faulty}: {e}", schedule.key())
                })?;
                let t = &cell.taxonomy;
                let _ = writeln!(
                    out,
                    "{:<8} {:<12} {:<7} {:>7} {:>5} {:>5} {:>4} {:>6} {:>6} {:>8} {:>5} {:>7}",
                    corpus,
                    schedule.key(),
                    if faulty { "drops" } else { "none" },
                    cell.sampled,
                    t.completed,
                    t.rolled_back,
                    t.refused,
                    t.count(flux_core::FailureClass::LostWrite),
                    t.count(flux_core::FailureClass::StaleReplay),
                    t.count(flux_core::FailureClass::RollbackResidue),
                    t.count(flux_core::FailureClass::EglContext),
                    t.count(flux_core::FailureClass::IncompatibleFeature),
                );
                cells.push(cell);
            }
        }
    }
    Ok((cells, out))
}

/// Re-runs one representative cell per corpus size under the parallel
/// executor and demands byte-identical report and taxonomy JSON.
fn check_executor_identity(corpora: &[usize], sample: usize) -> Result<(), String> {
    for &corpus in corpora {
        let schedule = LifecycleSchedule::KillThenMigrate;
        let (serial_cell, serial_json) = run_cell(corpus, sample, schedule, true, false)?;
        let (parallel_cell, parallel_json) = run_cell(corpus, sample, schedule, true, true)?;
        if serial_json != parallel_json {
            return Err(format!(
                "corpus {corpus}: serial and parallel executors diverged on the fleet report"
            ));
        }
        if serde::to_json(&serial_cell.taxonomy) != serde::to_json(&parallel_cell.taxonomy) {
            return Err(format!(
                "corpus {corpus}: serial and parallel executors diverged on the taxonomy"
            ));
        }
    }
    Ok(())
}

/// The grid must exercise the taxonomy, not report a wall of zeroes: at
/// least three distinct classes populated across all cells, and the
/// generated census inside the paper's fig. 13 bands.
fn check_non_degenerate(cells: &[Cell], corpora: &[usize]) -> Result<(), String> {
    let mut aggregate = Taxonomy::default();
    for cell in cells {
        aggregate.merge(&cell.taxonomy);
    }
    if aggregate.populated_classes() < 3 {
        return Err(format!(
            "degenerate taxonomy: only {} classes populated in {}",
            aggregate.populated_classes(),
            serde::to_json(&aggregate)
        ));
    }
    for &corpus in corpora {
        let census = ProfileCorpus::new(SEED, corpus).census();
        let q60 = census.quantile(0.60).as_u64();
        let q90 = census.quantile(0.90).as_u64();
        if !(600_000..=1_600_000).contains(&q60) || !(6_000_000..=16_000_000).contains(&q90) {
            return Err(format!(
                "corpus {corpus} census drifted off the paper bands: q60 {q60} q90 {q90}"
            ));
        }
    }
    Ok(())
}

fn grid_json(cells: &[Cell]) -> String {
    let mut aggregate = Taxonomy::default();
    for cell in cells {
        aggregate.merge(&cell.taxonomy);
    }
    let mut out = String::new();
    let mut obj = serde::object(&mut out);
    obj.field("bench", "ablation_corpus")
        .field("seed", &SEED)
        .field("aggregate", &aggregate)
        .field("grid", &cells.iter().collect::<Vec<_>>());
    obj.end();
    out
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out_dir = String::from(".");
    let mut corpora: &[usize] = &FULL_CORPORA;
    let mut sample = FULL_SAMPLE;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--smoke" => {
                corpora = &SMOKE_CORPORA;
                sample = SMOKE_SAMPLE;
            }
            "--out" => match it.next() {
                Some(dir) => out_dir = dir.clone(),
                None => {
                    eprintln!("ablation_corpus: --out needs a value");
                    return ExitCode::FAILURE;
                }
            },
            "--help" | "-h" => {
                println!("usage: ablation_corpus [--smoke] [--out DIR]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("ablation_corpus: unknown flag {other}");
                return ExitCode::FAILURE;
            }
        }
    }

    // Two full passes: virtual time owes us a byte-identical artifact.
    let (cells, table) = match run_grid(corpora, sample) {
        Ok(first) => first,
        Err(e) => {
            eprintln!("ablation_corpus: {e}");
            return ExitCode::FAILURE;
        }
    };
    let json = grid_json(&cells);
    match run_grid(corpora, sample) {
        Ok((second, _)) if grid_json(&second) == json => {}
        Ok(_) => {
            eprintln!("ablation_corpus: two passes over the same seed diverged");
            return ExitCode::FAILURE;
        }
        Err(e) => {
            eprintln!("ablation_corpus: repeat pass failed: {e}");
            return ExitCode::FAILURE;
        }
    }
    if let Err(e) = check_executor_identity(corpora, sample) {
        eprintln!("ablation_corpus: {e}");
        return ExitCode::FAILURE;
    }
    if let Err(e) = check_non_degenerate(&cells, corpora) {
        eprintln!("ablation_corpus: {e}");
        return ExitCode::FAILURE;
    }

    print!("{table}");
    println!("\ntaxonomy non-degenerate; passes and executors byte-identical");

    let dir = std::path::Path::new(&out_dir);
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("ablation_corpus: cannot create {}: {e}", dir.display());
        return ExitCode::FAILURE;
    }
    for (name, body) in [
        ("BENCH_corpus.json", &json),
        ("ablation_corpus.txt", &table),
    ] {
        if let Err(e) = std::fs::write(dir.join(name), body) {
            eprintln!("ablation_corpus: cannot write {name}: {e}");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
