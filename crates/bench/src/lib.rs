//! Benchmark harnesses for every table and figure of the Flux paper.
//!
//! Each `src/bin/*.rs` binary regenerates one artifact of §4:
//!
//! | binary | artifact |
//! |---|---|
//! | `table2` | Table 2 — decorated services (methods, decoration LOC) |
//! | `table3` | Table 3 — top apps and workloads |
//! | `fig12` | Figure 12 — overall migration times |
//! | `fig13` | Figure 13 — stage breakdown |
//! | `fig14` | Figure 14 — user-perceived time excluding transfer |
//! | `fig15` | Figure 15 — data transferred + APK sizes |
//! | `fig16` | Figure 16 — Quadrant/SunSpider normalized to AOSP |
//! | `fig17` | Figure 17 — Play-store installation-size CDF + EGL census |
//! | `pairing` | §4 pairing-cost paragraph |
//! | `ablations` | DESIGN.md's design-choice ablations |
//! | `flux-prof` | one profiled migration: Chrome trace + stage profile |
//!
//! The Criterion benches under `benches/` measure the *real* cost of this
//! implementation's hot paths (record interposition, checkpoint codec,
//! replay, rsync, parcels).

pub mod evaluation;
pub mod quadrant;
pub mod table;

pub use evaluation::{run_full_evaluation, Evaluation, MigRow, PAIR_LABELS};
pub use quadrant::{run_quadrant_suite, QuadrantScores};
pub use table::Table;
