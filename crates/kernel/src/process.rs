//! Simulated processes and threads.

use crate::fd::FdTable;
use crate::mem::AddressSpace;
use flux_simcore::{ByteSize, Pid, Uid};
use serde::{Deserialize, Serialize};

/// A thread of a simulated process.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Thread {
    /// Thread id (thread-group-local).
    pub tid: u32,
    /// Thread name, e.g. `"main"`, `"Binder_1"`, `"RenderThread"`.
    pub name: String,
    /// Size of the architecture register/TLS blob a checkpoint carries.
    pub register_blob: u32,
}

impl Thread {
    /// Creates a thread with the default register blob size (matching a
    /// 32-bit ARM register set plus NEON and TLS state).
    pub fn new(tid: u32, name: &str) -> Self {
        Self {
            tid,
            name: name.to_owned(),
            register_blob: 368,
        }
    }
}

/// Run state of a process, mirroring the Android activity host states that
/// matter for migration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ProcState {
    /// Scheduled normally.
    Running,
    /// Frozen by the task idler / cgroup freezer; checkpointable.
    Stopped,
}

/// One simulated process.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Process {
    /// Kernel-global PID.
    pub real_pid: Pid,
    /// The PID the process *observes* — equal to `real_pid` unless it lives
    /// in a private PID namespace (the CRIA restore path).
    pub virt_pid: Pid,
    /// Owning UID (one per app).
    pub uid: Uid,
    /// Package or command line, e.g. `"com.king.candycrushsaga"`.
    pub package: String,
    /// Threads, main thread first.
    pub threads: Vec<Thread>,
    /// The address space.
    pub mem: AddressSpace,
    /// Open descriptors.
    pub fds: FdTable,
    /// PID namespace id, if any.
    pub namespace: Option<u64>,
    /// Filesystem jail root, if chroot'd (the restored wrapper app is jailed
    /// to the synced home filesystem, §3.1).
    pub jail_root: Option<String>,
    /// Run state.
    pub state: ProcState,
}

impl Process {
    /// Creates a fresh single-threaded process.
    pub fn new(real_pid: Pid, uid: Uid, package: &str) -> Self {
        Self {
            real_pid,
            virt_pid: real_pid,
            uid,
            package: package.to_owned(),
            threads: vec![Thread::new(1, "main")],
            mem: AddressSpace::new(),
            fds: FdTable::new(),
            namespace: None,
            jail_root: None,
            state: ProcState::Running,
        }
    }

    /// Adds a thread and returns its tid.
    pub fn spawn_thread(&mut self, name: &str) -> u32 {
        let tid = self.threads.iter().map(|t| t.tid).max().unwrap_or(0) + 1;
        self.threads.push(Thread::new(tid, name));
        tid
    }

    /// Total bytes a checkpoint would need to dump for this process's
    /// memory (excludes clean file mappings and device-specific state).
    pub fn dump_bytes(&self) -> ByteSize {
        self.mem.dump_bytes()
    }

    /// Count of kernel objects a checkpoint walks (threads + VMAs + fds);
    /// used by the per-object cost model.
    pub fn object_count(&self) -> u64 {
        (self.threads.len() + self.mem.len() + self.fds.len()) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::{Prot, VmaKind};

    #[test]
    fn new_process_has_main_thread() {
        let p = Process::new(Pid(10), Uid(10_001), "com.example.app");
        assert_eq!(p.threads.len(), 1);
        assert_eq!(p.threads[0].name, "main");
        assert_eq!(p.virt_pid, p.real_pid);
        assert_eq!(p.state, ProcState::Running);
    }

    #[test]
    fn spawn_thread_assigns_increasing_tids() {
        let mut p = Process::new(Pid(10), Uid(10_001), "com.example.app");
        let a = p.spawn_thread("Binder_1");
        let b = p.spawn_thread("RenderThread");
        assert!(a > 1 && b > a);
    }

    #[test]
    fn object_count_covers_threads_vmas_fds() {
        let mut p = Process::new(Pid(10), Uid(10_001), "com.example.app");
        p.spawn_thread("Binder_1");
        p.mem
            .map(VmaKind::Anon, ByteSize::from_mib(1), Prot::RW, 1.0);
        p.fds.open(crate::fd::FdKind::Binder);
        assert_eq!(p.object_count(), 2 + 1 + 1);
    }
}
