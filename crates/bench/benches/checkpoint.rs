//! Throughput of the CRIA image codec (encode/decode) and of a full
//! kernel-level checkpoint walk.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use flux_kernel::{criu, FdKind, Kernel, ProcessImage, Prot, VmaKind};
use flux_simcore::{ByteSize, SimTime, Uid};

fn build_kernel() -> (Kernel, flux_simcore::Pid) {
    let mut k = Kernel::new("3.4");
    let sys = k.spawn(Uid::SYSTEM, "system_server");
    for name in ["notification", "alarm", "audio", "wifi"] {
        let node = k
            .binder
            .create_node(
                sys,
                flux_binder::NodeKind::Service {
                    descriptor: format!("I{name}"),
                },
            )
            .unwrap();
        k.binder.add_service(name, node).unwrap();
    }
    let app = k.spawn(Uid(10_001), "com.example.bench");
    {
        let p = k.process_mut(app).unwrap();
        for i in 0..6 {
            p.spawn_thread(&format!("Binder_{i}"));
        }
        for _ in 0..24 {
            p.mem
                .map(VmaKind::Anon, ByteSize::from_mib(1), Prot::RW, 0.5);
        }
        for i in 0..48 {
            p.fds.open(FdKind::File {
                path: format!("/data/data/com.example.bench/files/f{i}"),
                offset: 0,
                writable: false,
            });
        }
    }
    for name in ["notification", "alarm", "audio", "wifi"] {
        k.binder.get_service(app, name).unwrap();
    }
    k.freeze(app).unwrap();
    (k, app)
}

fn bench_checkpoint(c: &mut Criterion) {
    let (kernel, app) = build_kernel();
    let image = criu::checkpoint(&kernel, app, SimTime::ZERO).unwrap();
    let encoded = image.encode();

    c.bench_function("criu/checkpoint_walk", |b| {
        b.iter(|| criu::checkpoint(black_box(&kernel), app, SimTime::ZERO).unwrap())
    });

    let mut g = c.benchmark_group("criu/image_codec");
    g.throughput(Throughput::Bytes(encoded.len() as u64));
    g.bench_function("encode", |b| b.iter(|| black_box(&image).encode()));
    g.bench_function("decode", |b| {
        b.iter(|| ProcessImage::decode(black_box(&encoded)).unwrap())
    });
    g.finish();

    c.bench_function("criu/materialize_1mib_pages", |b| {
        b.iter(|| image.materialize_pages(1024 * 1024))
    });
}

criterion_group!(benches, bench_checkpoint);
criterion_main!(benches);
