//! The Android app framework: activities, views, Dalvik and OpenGL.
//!
//! Everything app-side the Flux paper relies on lives here:
//!
//! * [`ui`] — the activity lifecycle (Resumed/Paused/Stopped), windows and
//!   view hierarchies (§2 of the paper);
//! * [`dalvik`] — the per-app Dalvik VM, with the Flux modification that
//!   obtains heap memory via `mmap` instead of ashmem (§3.3);
//! * [`gl`] — the OpenGL ES stack: generic + vendor libraries, EGL contexts
//!   with GPU and pmem backing, and Flux's `eglUnload` extension;
//! * [`app`] — launching apps with a resource footprint and calling system
//!   services through Binder;
//! * [`lifecycle`] — the ActivityThread cascades CRIA drives: background,
//!   `handleTrimMemory`, `eglUnload`, and conditional re-initialisation on
//!   the guest.

pub mod app;
pub mod dalvik;
pub mod gl;
pub mod lifecycle;
pub mod ui;

pub use app::{add_process, launch, App, AppFootprint, PendingWrite};
pub use dalvik::Dalvik;
pub use gl::{EglContext, GlState};
pub use lifecycle::{
    conditional_reinit, egl_unload, handle_trim_memory, move_to_background, LifecycleEvent,
    PrepStats,
};
pub use ui::{Activity, ActivityState, View, ViewRoot};
