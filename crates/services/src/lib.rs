//! Android system services with Flux-decorated interfaces.
//!
//! Apps "rely heavily on interactions with shared, long-running system
//! services" (§2 of the paper) and those services hold the app-specific
//! state Selective Record/Adaptive Replay migrates. This crate provides:
//!
//! * the decorated AIDL definitions for all 22 services of Table 2
//!   (`aidl/*.aidl`, embedded via [`registry`]), with method counts and
//!   decoration LOC matching the paper exactly;
//! * [`sensor_native`] — the hand-written record/replay rules for the
//!   natively implemented SensorService (Table 2's 94 LOC entry);
//! * behavioural implementations of the services the evaluation exercises
//!   ([`svc`]), plus the WindowManager and PackageManager Flux needs;
//! * [`ServiceHost`] — dispatch of Binder transactions to service objects,
//!   the layer the Selective Record runtime in `flux-core` interposes on.

pub mod host;
pub mod intent;
pub mod registry;
pub mod sensor_native;
pub mod service;
pub mod svc;

pub use host::{DispatchResult, ServiceHost};
pub use intent::{
    Delivery, Event, Intent, ACTION_CONFIGURATION_CHANGED, ACTION_CONNECTIVITY_CHANGE,
};
pub use registry::{compile_all, table2, ServiceClass, ServiceSpec, Table2Row, REGISTRY};
pub use service::{ServiceCtx, SystemService};
pub use svc::{boot_android, ServicesConfig};
