//! A virtual-time pipeline scheduler.
//!
//! The serial migration path charges every cost to the single [`SimClock`](crate::SimClock)
//! in sequence, so checkpoint compression, radio transfer and filesystem
//! sync can never overlap. A [`Pipeline`] models the overlap the real
//! system gets from running those on separate hardware resources (CPU,
//! radio, flash): each *lane* keeps its own cursor, work items charge only
//! their lane, and the pipeline ends at the maximum cursor. The difference
//! between the summed busy time and the wall-clock span is exactly the
//! latency the overlap hid.
//!
//! The scheduler is purely arithmetic over [`SimTime`] — no threads, no
//! interleaving nondeterminism — so pipelined runs stay byte-identical for
//! a fixed seed, the repo's core invariant.
//!
//! # Examples
//!
//! ```
//! use flux_simcore::pipeline::Pipeline;
//! use flux_simcore::{SimDuration, SimTime};
//!
//! let mut p = Pipeline::begin(SimTime::ZERO);
//! let cpu = p.lane();
//! let radio = p.lane();
//! // 4s of compression and 6s of transfer, started together:
//! p.run(cpu, SimDuration::from_secs(4));
//! p.run(radio, SimDuration::from_secs(6));
//! assert_eq!(p.wall(), SimDuration::from_secs(6));
//! assert_eq!(p.busy(), SimDuration::from_secs(10));
//! assert_eq!(p.overlap_saved(), SimDuration::from_secs(4));
//! ```

use crate::time::{SimDuration, SimTime};

/// Handle to one pipeline lane (an independent resource: CPU, radio, flash).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PipeLane(usize);

/// A set of concurrent lanes advancing through virtual time together.
#[derive(Debug, Clone)]
pub struct Pipeline {
    start: SimTime,
    lanes: Vec<SimTime>,
    busy: SimDuration,
}

impl Pipeline {
    /// Opens a pipeline; every lane's cursor starts at `now`.
    pub fn begin(now: SimTime) -> Self {
        Self {
            start: now,
            lanes: Vec::new(),
            busy: SimDuration::ZERO,
        }
    }

    /// Adds a lane and returns its handle.
    pub fn lane(&mut self) -> PipeLane {
        self.lanes.push(self.start);
        PipeLane(self.lanes.len() - 1)
    }

    /// Charges `work` to `lane` starting at its current cursor.
    /// Returns the `(start, end)` window the work occupied.
    pub fn run(&mut self, lane: PipeLane, work: SimDuration) -> (SimTime, SimTime) {
        self.run_after(lane, self.start, work)
    }

    /// Charges `work` to `lane`, starting no earlier than `ready` (e.g. the
    /// moment the first compressed chunk exists for the radio to send).
    /// The work begins at `max(lane cursor, ready)` — lanes are in-order —
    /// and the lane cursor advances to its end.
    pub fn run_after(
        &mut self,
        lane: PipeLane,
        ready: SimTime,
        work: SimDuration,
    ) -> (SimTime, SimTime) {
        let cursor = &mut self.lanes[lane.0];
        let begin = if *cursor > ready { *cursor } else { ready };
        let end = begin + work;
        *cursor = end;
        self.busy += work;
        (begin, end)
    }

    /// The virtual time at which the pipeline opened.
    pub fn start(&self) -> SimTime {
        self.start
    }

    /// A lane's current cursor.
    pub fn cursor(&self, lane: PipeLane) -> SimTime {
        self.lanes[lane.0]
    }

    /// The virtual time at which every lane has drained: the pipeline's
    /// end, to which the caller advances its [`SimClock`](crate::SimClock).
    pub fn end(&self) -> SimTime {
        self.lanes.iter().copied().max().unwrap_or(self.start)
    }

    /// Wall-clock span of the pipeline (`end - start`).
    pub fn wall(&self) -> SimDuration {
        self.end().since(self.start)
    }

    /// Total work charged across all lanes — what a serial schedule would
    /// have cost.
    pub fn busy(&self) -> SimDuration {
        self.busy
    }

    /// Latency hidden by the overlap: `busy - wall`. Zero when nothing
    /// overlapped (single lane, or strictly dependent work).
    pub fn overlap_saved(&self) -> SimDuration {
        self.busy.saturating_sub(self.wall())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_lane_matches_serial() {
        let mut p = Pipeline::begin(SimTime::from_secs(5));
        let l = p.lane();
        p.run(l, SimDuration::from_secs(2));
        p.run(l, SimDuration::from_secs(3));
        assert_eq!(p.end(), SimTime::from_secs(10));
        assert_eq!(p.wall(), SimDuration::from_secs(5));
        assert_eq!(p.busy(), SimDuration::from_secs(5));
        assert_eq!(p.overlap_saved(), SimDuration::ZERO);
    }

    #[test]
    fn parallel_lanes_overlap() {
        let mut p = Pipeline::begin(SimTime::ZERO);
        let cpu = p.lane();
        let radio = p.lane();
        let flash = p.lane();
        p.run(cpu, SimDuration::from_millis(400));
        p.run(radio, SimDuration::from_millis(900));
        p.run(flash, SimDuration::from_millis(250));
        assert_eq!(p.wall(), SimDuration::from_millis(900));
        assert_eq!(p.busy(), SimDuration::from_millis(1550));
        assert_eq!(p.overlap_saved(), SimDuration::from_millis(650));
    }

    #[test]
    fn run_after_waits_for_readiness() {
        let mut p = Pipeline::begin(SimTime::ZERO);
        let cpu = p.lane();
        let radio = p.lane();
        let (_, compressed) = p.run(cpu, SimDuration::from_secs(2));
        // The radio can only start once the first output exists.
        let (start, end) = p.run_after(radio, compressed, SimDuration::from_secs(3));
        assert_eq!(start, SimTime::from_secs(2));
        assert_eq!(end, SimTime::from_secs(5));
        // Lane cursors are in-order: later work on the radio lane queues
        // behind the first even if its input was ready earlier.
        let (s2, _) = p.run_after(radio, SimTime::from_secs(1), SimDuration::from_secs(1));
        assert_eq!(s2, SimTime::from_secs(5));
        assert_eq!(p.end(), SimTime::from_secs(6));
    }

    #[test]
    fn empty_pipeline_spans_nothing() {
        let p = Pipeline::begin(SimTime::from_secs(7));
        assert_eq!(p.end(), SimTime::from_secs(7));
        assert_eq!(p.wall(), SimDuration::ZERO);
        assert_eq!(p.overlap_saved(), SimDuration::ZERO);
    }
}
