//! The ConnectivityManagerService.
//!
//! Flux does not restore network connections; the reintegration stage tells
//! the app "connectivity was lost, a new connection is available" (§3.1).
//! [`ConnectivityManagerService::set_connected`] is the hook it uses.

use crate::service::{ServiceCtx, SystemService};
use flux_binder::{BinderError, Parcel};
use flux_simcore::Uid;
use std::any::Any;
use std::collections::BTreeMap;

/// The connectivity service state.
#[derive(Debug)]
pub struct ConnectivityManagerService {
    connected: bool,
    network_type: i32,
    network_preference: i32,
    feature_requests: BTreeMap<(Uid, i32, String), u32>,
    routes: Vec<(Uid, i32, Vec<u8>)>,
}

impl Default for ConnectivityManagerService {
    fn default() -> Self {
        Self {
            connected: true,
            network_type: 1, // TYPE_WIFI
            network_preference: 1,
            feature_requests: BTreeMap::new(),
            routes: Vec::new(),
        }
    }
}

impl ConnectivityManagerService {
    /// Whether an active network exists.
    pub fn is_connected(&self) -> bool {
        self.connected
    }

    /// Sets the active-network state (used by Flux reintegration and by
    /// workloads simulating wireless churn).
    pub fn set_connected(&mut self, connected: bool) {
        self.connected = connected;
    }

    /// Feature requests held by `uid`.
    pub fn features_of(&self, uid: Uid) -> usize {
        self.feature_requests
            .keys()
            .filter(|(u, _, _)| *u == uid)
            .count()
    }
}

impl SystemService for ConnectivityManagerService {
    fn descriptor(&self) -> &'static str {
        "IConnectivityManager"
    }

    fn registry_name(&self) -> &'static str {
        "connectivity"
    }

    fn on_call(
        &mut self,
        ctx: &mut ServiceCtx<'_>,
        method: &str,
        args: &Parcel,
    ) -> Result<Parcel, BinderError> {
        match method {
            "getActiveNetworkInfo" => Ok(Parcel::new()
                .with_bool(self.connected)
                .with_i32(self.network_type)),
            "getNetworkInfo" => {
                let ty = args.i32(0)?;
                Ok(Parcel::new()
                    .with_bool(self.connected && ty == self.network_type)
                    .with_i32(ty))
            }
            "isNetworkSupported" => {
                let ty = args.i32(0)?;
                Ok(Parcel::new().with_bool(ty == 1 || ty == 0))
            }
            "isActiveNetworkMetered" => Ok(Parcel::new().with_bool(false)),
            "setNetworkPreference" => {
                self.network_preference = args.i32(0)?;
                Ok(Parcel::new())
            }
            "getNetworkPreference" => Ok(Parcel::new().with_i32(self.network_preference)),
            "startUsingNetworkFeature" => {
                let ty = args.i32(0)?;
                let feature = args.str(1)?.to_owned();
                *self
                    .feature_requests
                    .entry((ctx.caller_uid, ty, feature))
                    .or_insert(0) += 1;
                Ok(Parcel::new().with_i32(0))
            }
            "stopUsingNetworkFeature" => {
                let ty = args.i32(0)?;
                let feature = args.str(1)?.to_owned();
                self.feature_requests.remove(&(ctx.caller_uid, ty, feature));
                Ok(Parcel::new().with_i32(0))
            }
            "requestRouteToHostAddress" => {
                let ty = args.i32(0)?;
                let addr = args.blob(1)?.to_vec();
                self.routes.push((ctx.caller_uid, ty, addr));
                Ok(Parcel::new().with_bool(true))
            }
            _ => Ok(Parcel::new()),
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}
