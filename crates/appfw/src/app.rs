//! The app runtime: a launched app with its process, UI and GL state.

use crate::dalvik::Dalvik;
use crate::gl::GlState;
use crate::ui::{Activity, ActivityState, ViewRoot};
use flux_binder::{BinderError, Parcel};
use flux_kernel::{FdKind, Kernel, Prot, VmaKind};
use flux_services::svc::window::WindowManagerService;
use flux_services::{Delivery, Event, ServiceHost};
use flux_simcore::{ByteSize, Pid, SimTime, Uid};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Resource footprint an app is launched with.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AppFootprint {
    /// Dalvik heap size.
    pub heap: ByteSize,
    /// Fraction of the heap that is dirty.
    pub heap_dirty: f64,
    /// Native (malloc) memory.
    pub native: ByteSize,
    /// GPU texture memory per EGL context.
    pub textures: ByteSize,
    /// EGL contexts (0 for non-GL apps).
    pub gl_contexts: u32,
    /// Views in the hierarchy.
    pub views: usize,
    /// Extra threads beyond main (binder threads, render thread…).
    pub threads: u32,
    /// APK size (code mapping).
    pub apk: ByteSize,
    /// Whether the app opens an INET socket (most do).
    pub network: bool,
}

impl Default for AppFootprint {
    fn default() -> Self {
        Self {
            heap: ByteSize::from_mib(24),
            heap_dirty: 0.4,
            native: ByteSize::from_mib(6),
            textures: ByteSize::from_mib(8),
            gl_contexts: 1,
            views: 40,
            threads: 4,
            apk: ByteSize::from_mib(10),
            network: true,
        }
    }
}

/// A data-directory write the app has prepared in memory but not yet
/// persisted: it reaches disk at the next lifecycle save point
/// (`onPause`/`onStop`, or the pre-checkpoint flush migration drives). A
/// killed process loses its pending writes — the lifecycle data-loss
/// hazard the scenario oracle classifies as a lost write.
///
/// The hash is fixed when the write is buffered, so flushing at any later
/// instant produces the same bytes the app promised at write time.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PendingWrite {
    /// File name relative to the app data dir's `files/` subdirectory.
    pub name: String,
    /// Content size.
    pub size: ByteSize,
    /// Content identity.
    pub hash: u64,
}

/// A launched app.
#[derive(Debug)]
pub struct App {
    /// Package name.
    pub package: String,
    /// Assigned UID.
    pub uid: Uid,
    /// Main process (real PID on the hosting kernel).
    pub main_pid: Pid,
    /// Extra processes for multi-process apps (unsupported by Flux, §3.4).
    pub extra_pids: Vec<Pid>,
    /// Activities, most recent first.
    pub activities: Vec<Activity>,
    /// The view hierarchy of the top activity.
    pub view_root: ViewRoot,
    /// GL stack.
    pub gl: GlState,
    /// Dalvik VM.
    pub dalvik: Dalvik,
    /// Cached service handles, by registry name.
    pub handles: BTreeMap<String, u32>,
    /// Events delivered to the app (broadcasts, alarms, sensor events…).
    pub inbox: Vec<Event>,
    /// App data directory.
    pub data_dir: String,
    /// Minimum API level the APK requires.
    pub min_api: u32,
    /// Whether the app is currently interacting with a ContentProvider
    /// (blocks migration while true, §3.4).
    pub in_content_provider_call: bool,
    /// Writes prepared in memory but not yet persisted; lost if the
    /// process dies before a lifecycle save point.
    pub pending_writes: Vec<PendingWrite>,
}

impl App {
    /// The current lifecycle state of the top activity.
    pub fn top_state(&self) -> Option<ActivityState> {
        self.activities.first().map(|a| a.state)
    }

    /// Whether the app spans multiple processes.
    pub fn is_multi_process(&self) -> bool {
        !self.extra_pids.is_empty()
    }

    /// All PIDs of the app.
    pub fn pids(&self) -> Vec<Pid> {
        let mut v = vec![self.main_pid];
        v.extend_from_slice(&self.extra_pids);
        v
    }

    /// Takes and clears the delivered-event inbox.
    pub fn drain_inbox(&mut self) -> Vec<Event> {
        std::mem::take(&mut self.inbox)
    }

    /// Buffers a data-directory write in memory. A later write to the
    /// same name replaces the earlier one, as re-saving a file would.
    pub fn buffer_write(&mut self, name: &str, size: ByteSize, hash: u64) {
        self.pending_writes.retain(|w| w.name != name);
        self.pending_writes.push(PendingWrite {
            name: name.to_owned(),
            size,
            hash,
        });
    }

    /// Takes the buffered writes for the caller to persist — the
    /// `onPause`/`onStop` save path.
    pub fn drain_pending(&mut self) -> Vec<PendingWrite> {
        std::mem::take(&mut self.pending_writes)
    }

    /// Accepts a delivery from the service layer.
    pub fn accept(&mut self, delivery: Delivery) {
        debug_assert_eq!(delivery.to_uid, self.uid);
        self.inbox.push(delivery.event);
    }

    /// Obtains (and caches) a handle to a system service via the
    /// ServiceManager — the app-side `getService` path.
    pub fn service_handle(&mut self, kernel: &mut Kernel, name: &str) -> Result<u32, BinderError> {
        if let Some(h) = self.handles.get(name) {
            return Ok(*h);
        }
        let h = kernel.binder.get_service(self.main_pid, name)?;
        self.handles.insert(name.to_owned(), h);
        Ok(h)
    }

    /// Calls a system service method directly (without Flux recording);
    /// the Flux runtime in `flux-core` wraps this with Selective Record.
    pub fn call_service(
        &mut self,
        kernel: &mut Kernel,
        host: &mut ServiceHost,
        now: SimTime,
        name: &str,
        method: &str,
        args: Parcel,
    ) -> Result<(Parcel, Vec<Delivery>), BinderError> {
        let handle = self.service_handle(kernel, name)?;
        let result = host.dispatch(kernel, now, self.main_pid, handle, method, args)?;
        Ok((result.reply, result.deliveries))
    }
}

/// Launches an app on a kernel: spawns the process, maps its memory image,
/// boots Dalvik, builds the UI against the device screen, initialises GL
/// when the footprint asks for it, and registers its window.
#[allow(clippy::too_many_arguments)]
pub fn launch(
    kernel: &mut Kernel,
    host: &mut ServiceHost,
    now: SimTime,
    package: &str,
    uid: Uid,
    footprint: &AppFootprint,
    vendor_gl_lib: &str,
    min_api: u32,
) -> Result<App, BinderError> {
    let pid = kernel.spawn(uid, package);
    {
        let proc = kernel.process_mut(pid).expect("just spawned");
        for i in 0..footprint.threads {
            proc.spawn_thread(&format!("Binder_{i}"));
        }
        proc.mem.map(
            VmaKind::FileBacked {
                path: format!("/data/app/{package}.apk"),
                private_dirty: false,
            },
            footprint.apk,
            Prot::RX,
            0.0,
        );
        proc.mem.map(VmaKind::Anon, footprint.native, Prot::RW, 0.6);
        proc.mem
            .map(VmaKind::Stack, ByteSize::from_kib(512), Prot::RW, 0.3);
        proc.fds.open(FdKind::Binder);
        proc.fds.open(FdKind::Logger {
            buffer: "main".into(),
        });
        if footprint.network {
            proc.fds.open(FdKind::InetSocket {
                remote: format!("api.{package}.example:443"),
            });
        }
    }

    let dalvik = {
        let proc = kernel.process_mut(pid).expect("just spawned");
        Dalvik::boot(proc, footprint.heap, footprint.heap_dirty)
    };

    let screen = host
        .service::<WindowManagerService>("window")
        .map(WindowManagerService::screen)
        .unwrap_or((1200, 1920));

    let mut gl = GlState::default();
    if footprint.gl_contexts > 0 {
        // Split pmem out so the process and the allocator can be borrowed
        // together.
        let mut pmem = std::mem::take(&mut kernel.pmem);
        let proc = kernel.process_mut(pid).expect("just spawned");
        gl.initialize(proc, vendor_gl_lib, ByteSize::from_mib(2));
        for _ in 0..footprint.gl_contexts {
            gl.create_context(proc, &mut pmem, footprint.textures, 8);
        }
        kernel.pmem = pmem;
    }

    let mut app = App {
        package: package.to_owned(),
        uid,
        main_pid: pid,
        extra_pids: Vec::new(),
        activities: vec![Activity {
            name: ".MainActivity".into(),
            state: ActivityState::Resumed,
            window_token: format!("{package}/.MainActivity"),
        }],
        view_root: ViewRoot::build(footprint.views, screen),
        gl,
        dalvik,
        handles: BTreeMap::new(),
        inbox: Vec::new(),
        data_dir: format!("/data/data/{package}"),
        min_api,
        in_content_provider_call: false,
        pending_writes: Vec::new(),
    };

    // Register the main window with the WindowManager.
    let token = app.activities[0].window_token.clone();
    app.call_service(
        kernel,
        host,
        now,
        "window",
        "addWindow",
        Parcel::new().with_str(token),
    )?;
    Ok(app)
}

/// Spawns an additional process for a multi-process app (e.g. Facebook).
pub fn add_process(kernel: &mut Kernel, app: &mut App, suffix: &str) -> Pid {
    let pid = kernel.spawn(app.uid, &format!("{}:{suffix}", app.package));
    {
        let proc = kernel.process_mut(pid).expect("just spawned");
        proc.mem
            .map(VmaKind::Anon, ByteSize::from_mib(12), Prot::RW, 0.5);
        proc.fds.open(FdKind::Binder);
    }
    app.extra_pids.push(pid);
    pid
}
