//! Offline stand-in for `serde`.
//!
//! Re-exports the no-op derive macros so `#[derive(Serialize, Deserialize)]`
//! and `#[derive(serde::Serialize, serde::Deserialize)]` keep compiling
//! unchanged (the derives expand to nothing, so derived types carry no
//! impl). Unlike the original marker-only stub, [`Serialize`] is a real —
//! if deliberately small — trait: a type that implements it can append its
//! compact JSON encoding to a buffer, and [`to_json`] turns any such value
//! into a `String`. That is all the flux workspace needs to write bench
//! artifacts like `BENCH_throughput.json` without a hand-rolled formatter,
//! while staying entirely offline (no serde_json / bincode in the tree).
//!
//! The encoding is canonical: no whitespace, object fields in the order the
//! implementor writes them, `\u{XXXX}` escapes only where JSON requires
//! them. Equal values therefore serialize to byte-identical documents,
//! which the determinism suites rely on.

pub use serde_derive::{Deserialize, Serialize};

pub mod de;

pub use de::{from_json, parse, DeError, JsonValue};

/// A value that can append its compact JSON encoding to a buffer.
///
/// Stand-in for `serde::Serialize`; the single required method replaces
/// the serializer plumbing of the real crate.
pub trait Serialize {
    /// Appends the compact JSON encoding of `self` to `out`.
    fn serialize(&self, out: &mut String);
}

/// A value that can be reconstructed from a parsed [`JsonValue`].
///
/// Stand-in for `serde::Deserialize`; the single required method replaces
/// the deserializer plumbing of the real crate. The lifetime parameter is
/// kept so `for<'de> Deserialize<'de>` bounds written against real serde
/// keep compiling, but borrowed deserialization is not supported — every
/// impl produces an owned value.
pub trait Deserialize<'de>: Sized {
    /// Reconstructs `Self` from a parsed JSON value.
    fn deserialize(v: &JsonValue) -> Result<Self, DeError>;
}

/// Serializes `value` to a compact JSON string.
pub fn to_json<T: Serialize + ?Sized>(value: &T) -> String {
    let mut out = String::new();
    value.serialize(&mut out);
    out
}

/// Appends `s` as a JSON string literal (quoted, escaped) to `out`.
pub fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends an `f64` as JSON: shortest round-trip form, with a `.0` suffix
/// for integral values so numbers stay visibly floating-point. Non-finite
/// values (which JSON cannot represent) render as `null`.
pub fn write_f64(out: &mut String, v: f64) {
    if !v.is_finite() {
        out.push_str("null");
        return;
    }
    let s = format!("{v}");
    out.push_str(&s);
    if !s.contains('.') && !s.contains('e') && !s.contains('E') {
        out.push_str(".0");
    }
}

/// Incremental writer for a JSON object: `object(out)` opens `{`, each
/// [`field`](ObjectWriter::field) emits `"name":value` with commas managed,
/// and [`end`](ObjectWriter::end) closes `}`.
pub struct ObjectWriter<'a> {
    out: &'a mut String,
    first: bool,
}

/// Opens a JSON object on `out`.
pub fn object(out: &mut String) -> ObjectWriter<'_> {
    out.push('{');
    ObjectWriter { out, first: true }
}

impl<'a> ObjectWriter<'a> {
    /// Writes one `"name": value` member.
    pub fn field<T: Serialize + ?Sized>(&mut self, name: &str, value: &T) -> &mut Self {
        if !self.first {
            self.out.push(',');
        }
        self.first = false;
        write_escaped(self.out, name);
        self.out.push(':');
        value.serialize(self.out);
        self
    }

    /// Closes the object.
    pub fn end(self) {
        self.out.push('}');
    }
}

impl Serialize for bool {
    fn serialize(&self, out: &mut String) {
        out.push_str(if *self { "true" } else { "false" });
    }
}

macro_rules! int_impl {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self, out: &mut String) {
                out.push_str(&self.to_string());
            }
        }
    )*};
}
int_impl!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn serialize(&self, out: &mut String) {
        write_f64(out, *self);
    }
}

impl Serialize for f32 {
    fn serialize(&self, out: &mut String) {
        write_f64(out, f64::from(*self));
    }
}

impl Serialize for str {
    fn serialize(&self, out: &mut String) {
        write_escaped(out, self);
    }
}

impl Serialize for String {
    fn serialize(&self, out: &mut String) {
        write_escaped(out, self);
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self, out: &mut String) {
        (**self).serialize(out);
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self, out: &mut String) {
        out.push('[');
        for (i, item) in self.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            item.serialize(out);
        }
        out.push(']');
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self, out: &mut String) {
        self.as_slice().serialize(out);
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self, out: &mut String) {
        match self {
            Some(v) => v.serialize(out),
            None => out.push_str("null"),
        }
    }
}

/// Pairs render as two-element arrays (the shape the medium's per-flow
/// allocation lists use).
impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn serialize(&self, out: &mut String) {
        out.push('[');
        self.0.serialize(out);
        out.push(',');
        self.1.serialize(out);
        out.push(']');
    }
}

impl<'de> Deserialize<'de> for bool {
    fn deserialize(v: &JsonValue) -> Result<Self, DeError> {
        match v {
            JsonValue::Bool(b) => Ok(*b),
            _ => Err(DeError::msg("expected a bool")),
        }
    }
}

macro_rules! int_de_impl {
    ($($t:ty),*) => {$(
        impl<'de> Deserialize<'de> for $t {
            fn deserialize(v: &JsonValue) -> Result<Self, DeError> {
                match v {
                    JsonValue::Num(s) => s.parse().map_err(|_| {
                        DeError::msg(concat!("expected a ", stringify!($t)))
                    }),
                    _ => Err(DeError::msg(concat!("expected a ", stringify!($t)))),
                }
            }
        }
    )*};
}
int_de_impl!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<'de> Deserialize<'de> for f64 {
    fn deserialize(v: &JsonValue) -> Result<Self, DeError> {
        // `write_f64` renders non-finite values as `null`; accept that back.
        match v {
            JsonValue::Num(s) => s.parse().map_err(|_| DeError::msg("expected an f64")),
            JsonValue::Null => Ok(f64::NAN),
            _ => Err(DeError::msg("expected an f64")),
        }
    }
}

impl<'de> Deserialize<'de> for f32 {
    fn deserialize(v: &JsonValue) -> Result<Self, DeError> {
        f64::deserialize(v).map(|x| x as f32)
    }
}

impl<'de> Deserialize<'de> for String {
    fn deserialize(v: &JsonValue) -> Result<Self, DeError> {
        v.as_str()
            .map(str::to_owned)
            .ok_or_else(|| DeError::msg("expected a string"))
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn deserialize(v: &JsonValue) -> Result<Self, DeError> {
        v.as_arr()
            .ok_or_else(|| DeError::msg("expected an array"))?
            .iter()
            .map(T::deserialize)
            .collect()
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn deserialize(v: &JsonValue) -> Result<Self, DeError> {
        match v {
            JsonValue::Null => Ok(None),
            other => T::deserialize(other).map(Some),
        }
    }
}

impl<'de, A: Deserialize<'de>, B: Deserialize<'de>> Deserialize<'de> for (A, B) {
    fn deserialize(v: &JsonValue) -> Result<Self, DeError> {
        match v.as_arr() {
            Some([a, b]) => Ok((A::deserialize(a)?, B::deserialize(b)?)),
            _ => Err(DeError::msg("expected a two-element array")),
        }
    }
}
