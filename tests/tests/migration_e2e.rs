//! End-to-end migration scenarios across the whole stack.

mod common;

use common::staged_models as staged;
use flux_binder::Parcel;
use flux_core::{migrate, pair, FluxError, MigrationSpec, StageFailure, WorldBuilder};
use flux_device::{DeviceModel, DeviceProfile};
use flux_services::svc::alarm::AlarmManagerService;
use flux_services::svc::notification::NotificationManagerService;
use flux_services::svc::sensor::SensorService;
use flux_services::Event;
use flux_simcore::SimDuration;
use flux_workloads::{spec, top_apps, Action};

#[test]
fn notification_state_follows_the_app() {
    let (mut world, home, guest, pkg) =
        staged("WhatsApp", DeviceModel::Nexus4, DeviceModel::Nexus7_2013);
    // Post-then-cancel churn: only the surviving notification may migrate.
    world
        .perform(
            home,
            &pkg,
            &Action::PostNotification {
                id: 50,
                payload_kib: 4,
            },
        )
        .unwrap();
    world
        .perform(home, &pkg, &Action::CancelNotification { id: 50 })
        .unwrap();

    migrate(&mut world, MigrationSpec::new(&pkg).between(home, guest)).unwrap();

    let guest_dev = world.device(guest).unwrap();
    let uid = guest_dev.app_uid(&pkg).unwrap();
    let active = guest_dev
        .host
        .service::<NotificationManagerService>("notification")
        .unwrap()
        .active_for(uid);
    // Exactly the WhatsApp workload's one notification (id 2); 50 is gone.
    assert_eq!(active.len(), 1);
    assert_eq!(active[0].id, 2);

    // And the home device no longer shows it.
    let home_dev = world.device(home).unwrap();
    assert_eq!(
        home_dev
            .host
            .service::<NotificationManagerService>("notification")
            .unwrap()
            .active_count(),
        0
    );
}

#[test]
fn pending_alarms_migrate_and_fire_on_guest() {
    let (mut world, home, guest, pkg) =
        staged("eBay", DeviceModel::Nexus7_2013, DeviceModel::Nexus7_2013);
    migrate(&mut world, MigrationSpec::new(&pkg).between(home, guest)).unwrap();

    // The auction-ending alarm (420 s) is pending on the guest.
    let guest_dev = world.device(guest).unwrap();
    let uid = guest_dev.app_uid(&pkg).unwrap();
    let pending = guest_dev
        .host
        .service::<AlarmManagerService>("alarm")
        .unwrap()
        .pending_for(uid);
    assert_eq!(pending.len(), 1);

    // Advance past the trigger: the app receives the broadcast on the guest.
    world.tick(SimDuration::from_secs(600));
    let events = world
        .device_mut(guest)
        .unwrap()
        .apps
        .get_mut(&pkg)
        .unwrap()
        .drain_inbox();
    assert!(events
        .iter()
        .any(|e| matches!(e, Event::AlarmFired { operation } if operation == "auction-ending")));
}

#[test]
fn sensor_connection_keeps_handle_and_descriptor() {
    let (mut world, home, guest, pkg) =
        staged("Snapchat", DeviceModel::Nexus4, DeviceModel::Nexus7_2013);

    // Snapshot the app-visible identifiers on the home device.
    let (old_handle, old_fd) = {
        let dev = world.device(home).unwrap();
        let uid = dev.app_uid(&pkg).unwrap();
        let log = dev.records.log(uid).unwrap();
        let conn = log
            .entries()
            .iter()
            .find(|e| e.method == "createSensorEventConnection")
            .expect("connection recorded");
        let chan = log
            .entries()
            .iter()
            .find(|e| e.method == "getSensorChannel")
            .expect("channel recorded");
        (
            match conn.reply.object(0).unwrap() {
                flux_binder::ObjRef::Handle(h) => h,
                o => panic!("expected handle, got {o:?}"),
            },
            chan.reply.fd(0).unwrap(),
        )
    };

    migrate(&mut world, MigrationSpec::new(&pkg).between(home, guest)).unwrap();

    let dev = world.device(guest).unwrap();
    let app = dev.apps.get(&pkg).unwrap();
    // The old handle resolves to a live connection node on the guest.
    let node = dev
        .kernel
        .binder
        .resolve_handle(app.main_pid, old_handle)
        .expect("old handle valid on guest");
    let uid = app.uid;
    let connections = dev
        .host
        .service::<SensorService>("sensorservice")
        .unwrap()
        .connections_of(uid);
    assert!(connections.iter().any(|c| c.node == node));
    // The event channel sits at the same descriptor number, as a live
    // Unix socket (dup2'd over the reserved slot).
    let proc = dev.kernel.process(app.main_pid).unwrap();
    assert!(matches!(
        proc.fds.get(old_fd),
        Some(flux_kernel::FdKind::UnixSocket { .. })
    ));
    // The enabled sensor survived too.
    assert!(connections.iter().any(|c| !c.enabled.is_empty()));
}

#[test]
fn virt_pid_is_stable_across_migration() {
    let (mut world, home, guest, pkg) =
        staged("Twitter", DeviceModel::Nexus7_2012, DeviceModel::Nexus4);
    let home_pid = world.device(home).unwrap().apps.get(&pkg).unwrap().main_pid;
    let virt = world
        .device(home)
        .unwrap()
        .kernel
        .process(home_pid)
        .unwrap()
        .virt_pid;

    migrate(&mut world, MigrationSpec::new(&pkg).between(home, guest)).unwrap();

    let dev = world.device(guest).unwrap();
    let app = dev.apps.get(&pkg).unwrap();
    let proc = dev.kernel.process(app.main_pid).unwrap();
    assert_eq!(
        proc.virt_pid, virt,
        "app observes the same PID via its namespace"
    );
    assert!(proc.namespace.is_some());
    assert!(proc
        .jail_root
        .as_deref()
        .unwrap_or("")
        .contains("/data/flux/"));
}

#[test]
fn migration_refusals_match_section_3_4() {
    // Multi-process.
    let (mut world, home, guest, pkg) =
        staged("Facebook", DeviceModel::Nexus4, DeviceModel::Nexus7_2013);
    assert!(matches!(
        migrate(&mut world, MigrationSpec::new(&pkg).between(home, guest)),
        Err(FluxError::Migration(StageFailure::MultiProcess {
            processes: 2
        }))
    ));

    // Preserved EGL context.
    let (mut world, home, guest, pkg) = staged(
        "Subway Surfers",
        DeviceModel::Nexus4,
        DeviceModel::Nexus7_2013,
    );
    assert!(matches!(
        migrate(&mut world, MigrationSpec::new(&pkg).between(home, guest)),
        Err(FluxError::Migration(StageFailure::PreservedEglContext))
    ));

    // Mid-ContentProvider interaction.
    let (mut world, home, guest, pkg) =
        staged("Twitter", DeviceModel::Nexus4, DeviceModel::Nexus7_2013);
    world
        .perform(home, &pkg, &Action::BeginProviderQuery)
        .unwrap();
    assert!(matches!(
        migrate(&mut world, MigrationSpec::new(&pkg).between(home, guest)),
        Err(FluxError::Migration(StageFailure::ContentProviderActive))
    ));
    world
        .perform(home, &pkg, &Action::EndProviderQuery)
        .unwrap();
    assert!(migrate(&mut world, MigrationSpec::new(&pkg).between(home, guest)).is_ok());

    // Open common SD-card file.
    let (mut world, home, guest, pkg) =
        staged("ZEDGE", DeviceModel::Nexus4, DeviceModel::Nexus7_2013);
    world
        .perform(
            home,
            &pkg,
            &Action::OpenCommonSdFile {
                name: "Music/song.mp3".into(),
            },
        )
        .unwrap();
    assert!(matches!(
        migrate(&mut world, MigrationSpec::new(&pkg).between(home, guest)),
        Err(FluxError::Migration(StageFailure::CommonSdCardFile { .. }))
    ));

    // Unpaired devices.
    let app = spec("Twitter").unwrap();
    let (mut world, ids) = WorldBuilder::new()
        .seed(3)
        .device("h", DeviceProfile::nexus4())
        .device("g", DeviceProfile::nexus7_2013())
        .app(0, app.clone())
        .build()
        .unwrap();
    let (home, guest) = (ids[0], ids[1]);
    assert!(matches!(
        migrate(
            &mut world,
            MigrationSpec::new(&app.package).between(home, guest)
        ),
        Err(FluxError::Migration(StageFailure::NotPaired))
    ));
}

#[test]
fn api_level_incompatibility_is_refused() {
    // A guest stuck on an older stack.
    let mut old = DeviceProfile::nexus7_2012();
    old.api_level = 17;
    let mut app = spec("Twitter").unwrap();
    app.min_api = 19;
    let (mut world, ids) = WorldBuilder::new()
        .seed(8)
        .device("h", DeviceProfile::nexus4())
        .device("g", old)
        .app(0, app.clone())
        .pair(0, 1)
        .build()
        .unwrap();
    let (home, guest) = (ids[0], ids[1]);
    assert!(matches!(
        migrate(
            &mut world,
            MigrationSpec::new(&app.package).between(home, guest)
        ),
        Err(FluxError::Migration(StageFailure::ApiLevelIncompatible {
            required: 19,
            guest: 17
        }))
    ));
}

#[test]
fn dropped_network_connections_are_reported() {
    let (mut world, home, guest, pkg) =
        staged("Netflix", DeviceModel::Nexus4, DeviceModel::Nexus7_2013);
    let report = migrate(&mut world, MigrationSpec::new(&pkg).between(home, guest)).unwrap();
    assert_eq!(report.dropped_connections.len(), 1);
    assert!(report.dropped_connections[0].contains(":443"));
}

#[test]
fn receivers_get_connectivity_change_after_migration() {
    let (mut world, home, guest, pkg) =
        staged("Skype", DeviceModel::Nexus4, DeviceModel::Nexus7_2013);
    migrate(&mut world, MigrationSpec::new(&pkg).between(home, guest)).unwrap();
    // Skype registered a CONNECTIVITY_CHANGE receiver; replay re-registered
    // it, so the disconnect + reconnect broadcasts reached the app.
    let events = world
        .device_mut(guest)
        .unwrap()
        .apps
        .get_mut(&pkg)
        .unwrap()
        .drain_inbox();
    let conn_events = events
        .iter()
        .filter(
            |e| matches!(e, Event::Broadcast { intent } if intent.action.contains("CONNECTIVITY")),
        )
        .count();
    assert_eq!(conn_events, 2, "loss + new connection");
}

#[test]
fn all_sixteen_migratable_apps_succeed_on_the_hardest_pair() {
    // Nexus 7 (2012) -> Nexus 4: different GPU vendors, kernels, screens.
    for app in top_apps() {
        if app.multi_process || app.preserve_egl {
            continue;
        }
        let (mut world, home, guest, pkg) =
            staged(&app.name, DeviceModel::Nexus7_2012, DeviceModel::Nexus4);
        let report = migrate(&mut world, MigrationSpec::new(&pkg).between(home, guest))
            .unwrap_or_else(|e| {
                panic!("{} failed: {e}", app.name);
            });
        // The vendor GL library was swapped to the guest's.
        let dev = world.device(guest).unwrap();
        let a = dev.apps.get(&pkg).unwrap();
        if app.gl_contexts > 0 {
            assert_eq!(
                a.gl.vendor_lib.as_deref(),
                Some("libGLES_adreno.so"),
                "{}",
                app.name
            );
        }
        assert!(report.stages.total() > SimDuration::ZERO);
    }
}

#[test]
fn migrate_back_home_round_trip() {
    let (mut world, home, guest, pkg) =
        staged("Bible", DeviceModel::Nexus4, DeviceModel::Nexus7_2013);
    migrate(&mut world, MigrationSpec::new(&pkg).between(home, guest)).unwrap();

    // Add state on the guest, then bring the app home.
    world
        .perform(
            guest,
            &pkg,
            &Action::PostNotification {
                id: 99,
                payload_kib: 2,
            },
        )
        .unwrap();
    pair(&mut world, guest, home).unwrap();
    migrate(&mut world, MigrationSpec::new(&pkg).between(guest, home)).unwrap();

    let home_dev = world.device(home).unwrap();
    let uid = home_dev.app_uid(&pkg).unwrap();
    let active = home_dev
        .host
        .service::<NotificationManagerService>("notification")
        .unwrap()
        .active_for(uid);
    assert!(
        active.iter().any(|n| n.id == 99),
        "guest-side state came home"
    );
    assert!(!world.device(guest).unwrap().apps.contains_key(&pkg));
}

#[test]
fn recording_disabled_blocks_nothing_but_replays_nothing() {
    let app = spec("WhatsApp").unwrap();
    let (mut world, ids) = WorldBuilder::new()
        .seed(5)
        .recording(false)
        .device("h", DeviceProfile::nexus4())
        .device("g", DeviceProfile::nexus7_2013())
        .app(0, app.clone())
        .build()
        .unwrap();
    let (home, guest) = (ids[0], ids[1]);
    world
        .run_script(home, &app.package, &app.actions.clone())
        .unwrap();
    pair(&mut world, home, guest).unwrap();
    let report = migrate(
        &mut world,
        MigrationSpec::new(&app.package).between(home, guest),
    )
    .unwrap();
    // Vanilla AOSP mode: nothing recorded, so nothing to replay — the
    // notification does NOT follow the app.
    assert_eq!(report.replay.total(), 0);
    let uid = world.device(guest).unwrap().app_uid(&app.package).unwrap();
    assert_eq!(
        world
            .device(guest)
            .unwrap()
            .host
            .service::<NotificationManagerService>("notification")
            .unwrap()
            .active_for(uid)
            .len(),
        0
    );
}

#[test]
fn clipboard_call_with_replay_keeps_only_latest_clip() {
    let (mut world, home, guest, pkg) =
        staged("Twitter", DeviceModel::Nexus4, DeviceModel::Nexus7_2013);
    for i in 0..5u8 {
        world
            .app_call(
                home,
                &pkg,
                "clipboard",
                "setPrimaryClip",
                Parcel::new().with_blob(vec![i; 64]),
            )
            .unwrap();
    }
    // The record log holds exactly one setPrimaryClip (the @drop this rule).
    let uid = world.device(home).unwrap().app_uid(&pkg).unwrap();
    let clip_entries = world
        .device(home)
        .unwrap()
        .records
        .log(uid)
        .unwrap()
        .entries()
        .iter()
        .filter(|e| e.method == "setPrimaryClip")
        .count();
    assert_eq!(clip_entries, 1);

    migrate(&mut world, MigrationSpec::new(&pkg).between(home, guest)).unwrap();
    let clip = world
        .device(guest)
        .unwrap()
        .host
        .service::<flux_services::svc::clipboard::ClipboardService>("clipboard")
        .unwrap()
        .primary_clip()
        .unwrap()
        .to_vec();
    assert_eq!(clip, vec![4u8; 64]);
}
