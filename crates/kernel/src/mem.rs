//! Virtual memory areas of a simulated process.
//!
//! CRIA checkpoints a process's address space, so the kernel model tracks
//! VMAs with enough fidelity to know (a) how many bytes a checkpoint image
//! contains, (b) which mappings are file-backed and need no page dump, and
//! (c) which mappings are *device-specific* (GPU, pmem) and must be freed by
//! Flux's preparation stage before checkpointing can proceed.

use flux_simcore::ByteSize;
use serde::{Deserialize, Serialize};

/// The simulated page size (4 KiB, as on all the paper's devices).
pub const PAGE_SIZE: u64 = 4096;

/// What backs a VMA.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum VmaKind {
    /// Anonymous memory: Dalvik heap, malloc arenas.
    Anon,
    /// The main thread stack or a thread stack.
    Stack,
    /// A file-backed executable mapping (APK code, framework jars).
    /// `path` lets restore re-map the same file from the synced filesystem.
    FileBacked {
        /// Path of the backing file on the app's (synced) filesystem.
        path: String,
        /// Whether the mapping is private copy-on-write with dirty pages.
        private_dirty: bool,
    },
    /// A shared library mapping. `vendor_specific` marks GPU vendor
    /// libraries which must be unloaded by `eglUnload` before migration.
    SharedLib {
        /// Library path, e.g. `/system/lib/libEGL_adreno.so`.
        path: String,
        /// True for device-vendor GPU libraries.
        vendor_specific: bool,
    },
    /// An ashmem region (named anonymous shared memory).
    Ashmem {
        /// The backing ashmem region id.
        region: u64,
    },
    /// A physically contiguous pmem allocation used by devices like the GPU.
    Pmem {
        /// The backing pmem allocation id.
        alloc: u64,
    },
    /// GPU-mapped memory: textures, shader programs, command buffers.
    Gpu {
        /// Human-readable resource class, e.g. `"texture-cache"`.
        resource: String,
    },
}

impl VmaKind {
    /// Whether this mapping is device-specific state that cannot be
    /// checkpointed and must be released during migration preparation.
    pub fn is_device_specific(&self) -> bool {
        matches!(
            self,
            VmaKind::Pmem { .. }
                | VmaKind::Gpu { .. }
                | VmaKind::SharedLib {
                    vendor_specific: true,
                    ..
                }
        )
    }

    /// Whether the checkpoint must dump page contents for this mapping.
    ///
    /// Clean file-backed mappings are re-mapped from the synced filesystem
    /// on the guest instead of being dumped, which is what keeps checkpoint
    /// images small relative to the app's full footprint.
    pub fn needs_page_dump(&self) -> bool {
        match self {
            VmaKind::Anon | VmaKind::Stack | VmaKind::Ashmem { .. } => true,
            VmaKind::FileBacked { private_dirty, .. } => *private_dirty,
            VmaKind::SharedLib { .. } | VmaKind::Pmem { .. } | VmaKind::Gpu { .. } => false,
        }
    }
}

/// Memory protection bits of a VMA.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Prot {
    /// Readable.
    pub r: bool,
    /// Writable.
    pub w: bool,
    /// Executable.
    pub x: bool,
}

impl Prot {
    /// `rw-`, the common data protection.
    pub const RW: Prot = Prot {
        r: true,
        w: true,
        x: false,
    };
    /// `r-x`, the common code protection.
    pub const RX: Prot = Prot {
        r: true,
        w: false,
        x: true,
    };
    /// `r--`, read-only data.
    pub const R: Prot = Prot {
        r: true,
        w: false,
        x: false,
    };
}

/// One virtual memory area.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Vma {
    /// Stable id within the process.
    pub id: u64,
    /// What backs the mapping.
    pub kind: VmaKind,
    /// Mapping length in bytes (page-aligned).
    pub len: ByteSize,
    /// Protection bits.
    pub prot: Prot,
    /// Fraction of pages dirtied since mapping (0.0–1.0); determines how
    /// many pages a checkpoint image must carry for dump-needing VMAs.
    pub dirty: f64,
    /// Deterministic seed describing the synthetic page contents.
    pub content_seed: u64,
}

impl Vma {
    /// Pages spanned by the mapping.
    pub fn pages(&self) -> u64 {
        self.len.as_u64().div_ceil(PAGE_SIZE)
    }

    /// Bytes a checkpoint image must carry for this VMA.
    pub fn dump_bytes(&self) -> ByteSize {
        if !self.kind.needs_page_dump() {
            return ByteSize::ZERO;
        }
        let dirty_pages = (self.pages() as f64 * self.dirty.clamp(0.0, 1.0)).ceil() as u64;
        ByteSize::from_bytes(dirty_pages * PAGE_SIZE)
    }
}

/// The address space of a process: an ordered set of VMAs.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct AddressSpace {
    vmas: Vec<Vma>,
    next_id: u64,
}

impl AddressSpace {
    /// Creates an empty address space.
    pub fn new() -> Self {
        Self::default()
    }

    /// Maps a new VMA, rounding `len` up to whole pages, and returns its id.
    pub fn map(&mut self, kind: VmaKind, len: ByteSize, prot: Prot, dirty: f64) -> u64 {
        let seed = self.next_id.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        self.map_with_seed(kind, len, prot, dirty, seed)
    }

    /// [`map`](Self::map) with an explicit content seed.
    ///
    /// Restore uses this to carry the checkpointed page identity across
    /// devices: the restored pages *are* the home pages, so a later
    /// re-migration must present the same content identity for the guest's
    /// content-addressed image cache to recognise unchanged chunks.
    pub fn map_with_seed(
        &mut self,
        kind: VmaKind,
        len: ByteSize,
        prot: Prot,
        dirty: f64,
        content_seed: u64,
    ) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        let pages = len.as_u64().div_ceil(PAGE_SIZE).max(1);
        self.vmas.push(Vma {
            id,
            kind,
            len: ByteSize::from_bytes(pages * PAGE_SIZE),
            prot,
            dirty: dirty.clamp(0.0, 1.0),
            content_seed,
        });
        id
    }

    /// Unmaps the VMA with `id`. Returns the removed VMA if it existed.
    pub fn unmap(&mut self, id: u64) -> Option<Vma> {
        let idx = self.vmas.iter().position(|v| v.id == id)?;
        Some(self.vmas.remove(idx))
    }

    /// Unmaps every VMA matching `pred`, returning how many were removed.
    pub fn unmap_matching(&mut self, pred: impl Fn(&Vma) -> bool) -> usize {
        let before = self.vmas.len();
        self.vmas.retain(|v| !pred(v));
        before - self.vmas.len()
    }

    /// All VMAs, in mapping order.
    pub fn vmas(&self) -> &[Vma] {
        &self.vmas
    }

    /// Mutable VMA access (e.g. to dirty more pages as an app runs).
    pub fn vmas_mut(&mut self) -> &mut [Vma] {
        &mut self.vmas
    }

    /// Looks up a VMA by id.
    pub fn get(&self, id: u64) -> Option<&Vma> {
        self.vmas.iter().find(|v| v.id == id)
    }

    /// Total mapped bytes.
    pub fn mapped_bytes(&self) -> ByteSize {
        self.vmas.iter().map(|v| v.len).sum()
    }

    /// Bytes a checkpoint must dump across all VMAs.
    pub fn dump_bytes(&self) -> ByteSize {
        self.vmas.iter().map(Vma::dump_bytes).sum()
    }

    /// Whether any device-specific mappings remain (these block checkpoint).
    pub fn has_device_specific(&self) -> bool {
        self.vmas.iter().any(|v| v.kind.is_device_specific())
    }

    /// VMA count.
    pub fn len(&self) -> usize {
        self.vmas.len()
    }

    /// Whether the address space has no mappings.
    pub fn is_empty(&self) -> bool {
        self.vmas.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_rounds_to_pages() {
        let mut a = AddressSpace::new();
        let id = a.map(VmaKind::Anon, ByteSize::from_bytes(1), Prot::RW, 0.5);
        assert_eq!(a.get(id).unwrap().len.as_u64(), PAGE_SIZE);
        assert_eq!(a.get(id).unwrap().pages(), 1);
    }

    #[test]
    fn dump_bytes_skips_clean_file_mappings() {
        let mut a = AddressSpace::new();
        a.map(
            VmaKind::FileBacked {
                path: "/system/framework/framework.jar".into(),
                private_dirty: false,
            },
            ByteSize::from_mib(8),
            Prot::RX,
            0.0,
        );
        a.map(VmaKind::Anon, ByteSize::from_mib(4), Prot::RW, 1.0);
        assert_eq!(a.dump_bytes(), ByteSize::from_mib(4));
    }

    #[test]
    fn dump_bytes_scales_with_dirty_fraction() {
        let mut a = AddressSpace::new();
        a.map(VmaKind::Anon, ByteSize::from_mib(10), Prot::RW, 0.25);
        let dumped = a.dump_bytes().as_mib_f64();
        assert!((dumped - 2.5).abs() < 0.01, "dumped {dumped} MiB");
    }

    #[test]
    fn device_specific_kinds_are_detected() {
        assert!(VmaKind::Pmem { alloc: 1 }.is_device_specific());
        assert!(VmaKind::Gpu {
            resource: "texture".into()
        }
        .is_device_specific());
        assert!(VmaKind::SharedLib {
            path: "/vendor/lib/egl/libGLES_adreno.so".into(),
            vendor_specific: true
        }
        .is_device_specific());
        assert!(!VmaKind::SharedLib {
            path: "/system/lib/libEGL.so".into(),
            vendor_specific: false
        }
        .is_device_specific());
        assert!(!VmaKind::Anon.is_device_specific());
    }

    #[test]
    fn unmap_matching_removes_gpu_state() {
        let mut a = AddressSpace::new();
        a.map(VmaKind::Anon, ByteSize::from_mib(1), Prot::RW, 1.0);
        a.map(
            VmaKind::Gpu {
                resource: "texture".into(),
            },
            ByteSize::from_mib(16),
            Prot::RW,
            1.0,
        );
        a.map(
            VmaKind::Pmem { alloc: 3 },
            ByteSize::from_mib(8),
            Prot::RW,
            1.0,
        );
        assert!(a.has_device_specific());
        let removed = a.unmap_matching(|v| v.kind.is_device_specific());
        assert_eq!(removed, 2);
        assert!(!a.has_device_specific());
        assert_eq!(a.len(), 1);
    }

    #[test]
    fn unmap_by_id() {
        let mut a = AddressSpace::new();
        let id = a.map(VmaKind::Stack, ByteSize::from_kib(64), Prot::RW, 0.1);
        assert!(a.unmap(id).is_some());
        assert!(a.unmap(id).is_none());
        assert!(a.is_empty());
    }
}
