// SensorService interface. The service is implemented natively in C++ and
// AIDL cannot generate native record/replay code (§3.2), so there are no
// decorations here: the record rules and replay proxies are hand-written in
// flux-services::sensor_native, mirroring the paper's 94 hand-written LOC.
interface ISensorServer {
    Sensor[] getSensorList(String opPackageName);
    ISensorEventConnection createSensorEventConnection(String opPackageName);
    boolean enableSensor(in ISensorEventConnection connection, int handle, int samplingPeriodUs);
    boolean disableSensor(in ISensorEventConnection connection, int handle);
    ParcelFileDescriptor getSensorChannel(in ISensorEventConnection connection);
    int flushSensor(in ISensorEventConnection connection);
}
