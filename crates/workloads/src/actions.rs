//! Scriptable app actions.
//!
//! An [`Action`] is one step of a workload: it maps onto one or more
//! decorated service calls, memory operations or file writes in the
//! environment. Keeping actions as plain data lets the same script run
//! before and after a migration and lets tests compare the outcomes.

use serde::{Deserialize, Serialize};

/// One step of an app workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Action {
    /// Post a notification with the given id and payload size.
    PostNotification {
        /// Notification id.
        id: i32,
        /// Payload size in KiB.
        payload_kib: u32,
    },
    /// Cancel a previously posted notification.
    CancelNotification {
        /// Notification id.
        id: i32,
    },
    /// Set an alarm `in_secs` from now, identified by its PendingIntent.
    SetAlarm {
        /// PendingIntent identity.
        operation: String,
        /// Seconds from now to trigger.
        in_secs: u64,
    },
    /// Cancel a pending alarm.
    CancelAlarm {
        /// PendingIntent identity.
        operation: String,
    },
    /// Create a sensor event connection, enable a sensor and open the
    /// event channel (the full §3.2 SensorService flow).
    UseSensor {
        /// Sensor handle (index into the device's sensor list).
        handle: i32,
    },
    /// Set a stream volume.
    SetVolume {
        /// Stream type (3 = music).
        stream: i32,
        /// Volume index in the *home* device's range.
        index: i32,
    },
    /// Request audio focus.
    RequestAudioFocus {
        /// Focus client id.
        client: String,
    },
    /// Acquire a wakelock through the PowerManager.
    AcquireWakeLock {
        /// Lock tag.
        tag: String,
    },
    /// Release a wakelock.
    ReleaseWakeLock {
        /// Lock tag.
        tag: String,
    },
    /// Register a broadcast receiver for comma-separated actions.
    RegisterReceiver {
        /// Receiver identity.
        receiver: String,
        /// Comma-separated action list.
        actions: String,
    },
    /// Put data on the clipboard.
    SetClipboard {
        /// Clip size in bytes.
        bytes: usize,
    },
    /// Request location updates from a provider (`"gps"`/`"network"`).
    RequestLocation {
        /// Provider name.
        provider: String,
    },
    /// Trigger a WiFi scan.
    WifiScan,
    /// Vibrate for the given duration.
    Vibrate {
        /// Milliseconds.
        ms: i64,
    },
    /// Render frames (dirties GPU state and the renderer cache).
    DrawFrames {
        /// Frame count.
        frames: u32,
    },
    /// Grow/dirty the Dalvik heap.
    AllocateHeap {
        /// New heap size in MiB.
        mib: u32,
        /// Dirty fraction after allocation.
        dirty: f64,
    },
    /// Write a file into the app's data directory.
    WriteDataFile {
        /// File name relative to the data dir.
        name: String,
        /// Size in KiB.
        kib: u64,
    },
    /// Prepare a data-directory write but hold it in app memory until the
    /// next lifecycle save point (`onPause`/`onStop` or the pre-checkpoint
    /// flush). A process killed before that point loses it — the
    /// lifecycle data-loss hazard of Riganelli et al.'s benchmark.
    BufferedWrite {
        /// File name relative to the data dir.
        name: String,
        /// Size in KiB.
        kib: u64,
    },
    /// Open a file on the *common* SD card area (blocks migration, §3.4).
    OpenCommonSdFile {
        /// Path under /sdcard/.
        name: String,
    },
    /// Begin a ContentProvider interaction (blocks migration while open).
    BeginProviderQuery,
    /// Finish the ContentProvider interaction.
    EndProviderQuery,
    /// Idle for the given virtual time.
    Think {
        /// Milliseconds.
        ms: u64,
    },
    /// A synchronous ContentProvider round-trip: opens the provider
    /// connection, holds it for `ms` of virtual time and — when
    /// `resolved` — closes it again. An unresolved call leaves the
    /// connection open across a later migration attempt, the §3.4 state
    /// the preflight refuses.
    ContentProviderCall {
        /// Virtual duration of the provider interaction.
        ms: u64,
        /// Whether the call completes; `false` leaves it open.
        resolved: bool,
    },
    /// Open a file on the SD card. App-scoped paths (under
    /// `/sdcard/Android/data/<package>/`) migrate fine; `common` opens a
    /// shared path instead — the §3.4 state that blocks migration.
    OpenSdFile {
        /// Path relative to the chosen SD-card root.
        name: String,
        /// Whether to open on common storage rather than the app area.
        common: bool,
    },
}

#[cfg(test)]
mod tests {
    use super::Action;

    #[test]
    fn actions_are_plain_serializable_data() {
        let a = Action::SetAlarm {
            operation: "sync".into(),
            in_secs: 30,
        };
        let cloned = a.clone();
        assert_eq!(a, cloned);
    }
}
