//! The SensorService.
//!
//! The paper's example of replay with returned handles (§3.2): apps obtain
//! a `SensorEventConnection` Binder object and a Unix-domain event socket;
//! both must reappear at the *same* handle / descriptor after migration.
//! The connection is a second Binder node backed by this same service
//! object; the event socket is a descriptor opened in the caller's table.

use crate::intent::Event;
use crate::service::{ServiceCtx, SystemService};
use flux_binder::{BinderError, NodeId, ObjRef, Parcel};
use flux_kernel::FdKind;
use flux_simcore::Uid;
use std::any::Any;
use std::collections::BTreeMap;

/// One live sensor event connection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Connection {
    /// The Binder node backing the connection object.
    pub node: NodeId,
    /// Owning app.
    pub uid: Uid,
    /// Requesting package.
    pub package: String,
    /// Enabled sensor handles with their sampling periods (µs).
    pub enabled: BTreeMap<i32, i32>,
    /// The app-side descriptor of the event channel, once requested.
    pub channel_fd: Option<i32>,
}

/// The sensor service state.
#[derive(Debug)]
pub struct SensorService {
    sensors: Vec<String>,
    connections: BTreeMap<NodeId, Connection>,
    next_conn: u32,
}

impl SensorService {
    /// Creates the service with the device's sensor inventory.
    pub fn new(sensors: &[String]) -> Self {
        Self {
            sensors: sensors.to_vec(),
            connections: BTreeMap::new(),
            next_conn: 1,
        }
    }

    /// The sensor name for a handle, if valid.
    pub fn sensor_name(&self, handle: i32) -> Option<&str> {
        self.sensors.get(handle as usize).map(String::as_str)
    }

    /// Connections owned by `uid`.
    pub fn connections_of(&self, uid: Uid) -> Vec<&Connection> {
        self.connections.values().filter(|c| c.uid == uid).collect()
    }

    /// Emits one synthetic sensor event per enabled sensor of `uid`
    /// (driven by workloads to model a live sensor stream).
    pub fn pump_events(&self, uid: Uid, ctx: &mut ServiceCtx<'_>) {
        for conn in self.connections.values().filter(|c| c.uid == uid) {
            if let Some(fd) = conn.channel_fd {
                for handle in conn.enabled.keys() {
                    if let Some(name) = self.sensor_name(*handle) {
                        ctx.deliver(
                            uid,
                            Event::SensorEvent {
                                sensor: name.to_owned(),
                                channel_fd: fd,
                            },
                        );
                    }
                }
            }
        }
    }

    fn connection_mut(
        &mut self,
        node: NodeId,
        method: &str,
    ) -> Result<&mut Connection, BinderError> {
        self.connections
            .get_mut(&node)
            .ok_or_else(|| BinderError::TransactionFailed {
                interface: "ISensorServer".into(),
                method: method.to_owned(),
                reason: format!("no SensorEventConnection for node {node}"),
            })
    }
}

impl SystemService for SensorService {
    fn descriptor(&self) -> &'static str {
        "ISensorServer"
    }

    fn registry_name(&self) -> &'static str {
        "sensorservice"
    }

    fn on_call(
        &mut self,
        ctx: &mut ServiceCtx<'_>,
        method: &str,
        args: &Parcel,
    ) -> Result<Parcel, BinderError> {
        match method {
            "getSensorList" => {
                let mut p = Parcel::new().with_i32(self.sensors.len() as i32);
                for s in &self.sensors {
                    p.push(flux_binder::Value::Str(s.clone()));
                }
                Ok(p)
            }
            "createSensorEventConnection" => {
                let package = args.str(0)?.to_owned();
                let conn_id = self.next_conn;
                self.next_conn += 1;
                let node =
                    ctx.create_connection_node(&format!("ISensorEventConnection#{conn_id}"))?;
                self.connections.insert(
                    node,
                    Connection {
                        node,
                        uid: ctx.caller_uid,
                        package,
                        enabled: BTreeMap::new(),
                        channel_fd: None,
                    },
                );
                Ok(Parcel::new().with_object(ObjRef::Own(node)))
            }
            // These take the connection object as their first argument, as
            // in the ISensorServer definition; the record log preserves the
            // object reference so replay re-resolves it on the guest.
            "enableSensor" => {
                let node = self.target_connection(ctx, args)?;
                let handle = args.i32(1)?;
                let period = args.i32(2).unwrap_or(66_000);
                if self.sensor_name(handle).is_none() {
                    return Err(ctx.fail(
                        self.descriptor(),
                        method,
                        format!("bad sensor {handle}"),
                    ));
                }
                self.connection_mut(node, method)?
                    .enabled
                    .insert(handle, period);
                Ok(Parcel::new().with_bool(true))
            }
            "disableSensor" => {
                let node = self.target_connection(ctx, args)?;
                let handle = args.i32(1)?;
                self.connection_mut(node, method)?.enabled.remove(&handle);
                Ok(Parcel::new().with_bool(true))
            }
            "getSensorChannel" => {
                let node = self.target_connection(ctx, args)?;
                let conn = self.connection_mut(node, method)?;
                let peer = format!("SensorEventConnection#{node}");
                let uid = conn.uid;
                // Open the socket in the *caller's* descriptor table.
                let proc = ctx.kernel.process_mut(ctx.caller_pid).map_err(|e| {
                    BinderError::TransactionFailed {
                        interface: "ISensorServer".into(),
                        method: method.to_owned(),
                        reason: e.to_string(),
                    }
                })?;
                debug_assert_eq!(proc.uid, uid);
                let fd = proc.fds.open(FdKind::UnixSocket { peer });
                self.connection_mut(node, method)?.channel_fd = Some(fd);
                Ok(Parcel::new().with_fd(fd))
            }
            "flushSensor" => Ok(Parcel::new().with_i32(0)),
            other => Err(ctx.fail(self.descriptor(), other, "unhandled method")),
        }
    }

    fn on_uid_death(&mut self, _ctx: &mut ServiceCtx<'_>, uid: Uid) {
        self.connections.retain(|_, c| c.uid != uid);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

impl SensorService {
    /// Resolves the connection a call refers to: either the node the
    /// transaction targeted, or the connection object in argument 0.
    fn target_connection(
        &self,
        ctx: &ServiceCtx<'_>,
        args: &Parcel,
    ) -> Result<NodeId, BinderError> {
        if self.connections.contains_key(&ctx.target_node) {
            return Ok(ctx.target_node);
        }
        if let Ok(ObjRef::Own(node)) = args.object(0) {
            if self.connections.contains_key(&node) {
                return Ok(node);
            }
        }
        Err(BinderError::TransactionFailed {
            interface: "ISensorServer".into(),
            method: "<connection>".into(),
            reason: "call does not identify a SensorEventConnection".into(),
        })
    }
}
