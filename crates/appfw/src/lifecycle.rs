//! The ActivityThread side of CRIA's preparation and re-initialisation.
//!
//! §3.3 of the paper spells out the exact cascade Flux drives before a
//! checkpoint, and this module reproduces it step by step:
//!
//! 1. **Background** — the activity goes Paused, then the task idler stops
//!    it; its Surface is destroyed by the WindowManager.
//! 2. **Trim memory** — `handleTrimMemory(COMPLETE)`: the WindowManager's
//!    `startTrimMemory` flushes the HardwareRenderer caches, every
//!    ViewRoot's `terminateHardwareResources` destroys hardware rendering
//!    state, `endTrimMemory` terminates the EGL contexts.
//! 3. **`eglUnload`** — the Flux OpenGL extension unloads the vendor GL
//!    library, removing the last device-specific mapping.
//!
//! After restore, **conditional re-initialisation** rebuilds all of it
//! sized for the guest display: "because graphics state is reinitialized
//! and redrawn on the guest device, the resulting device-specific state is
//! customized for the guest device."

use crate::app::App;
use crate::ui::ActivityState;
use flux_binder::{BinderError, Parcel};
use flux_kernel::Kernel;
use flux_services::svc::window::WindowManagerService;
use flux_services::ServiceHost;
use flux_simcore::{ByteSize, SimTime};

/// A lifecycle transition a scenario schedule injects before or between
/// migration stages — the interleavings Riganelli et al.'s data-loss
/// benchmark exercises. `Pause`/`Stop` reach the app's save point first
/// (buffered writes persist); `Kill` does not (buffered writes are lost
/// with the process, which then cold-starts from disk).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum LifecycleEvent {
    /// `onPause`: the foreground activity pauses after saving.
    Pause,
    /// `onStop`: the activity stops and its surfaces go away, after saving.
    Stop,
    /// The process is killed without any lifecycle callback, then
    /// relaunched cold from its persisted state.
    Kill,
}

/// Statistics from a preparation run, consumed by the cost model.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PrepStats {
    /// Surfaces destroyed by backgrounding.
    pub surfaces_destroyed: usize,
    /// EGL contexts destroyed by trim-memory.
    pub contexts_destroyed: usize,
    /// GL resources (contexts + caches, rounded to objects) torn down.
    pub gl_resources: usize,
    /// Whether the vendor library was unloaded.
    pub vendor_unloaded: bool,
}

/// Moves the app's activities to the background: Resumed → Paused, then the
/// task idler stops them and their surfaces go away.
pub fn move_to_background(
    app: &mut App,
    kernel: &mut Kernel,
    host: &mut ServiceHost,
    now: SimTime,
) -> Result<usize, BinderError> {
    for a in &mut app.activities {
        if a.state == ActivityState::Resumed {
            a.state = ActivityState::Paused;
        }
    }
    // The Android task idler then moves paused activities to Stopped; the
    // paper notes Flux's unoptimised prototype simply waits for it.
    for a in &mut app.activities {
        a.state = ActivityState::Stopped;
    }
    // Stopped activities lose their Surfaces (WindowManager side).
    let token = app
        .activities
        .first()
        .map(|a| a.window_token.clone())
        .unwrap_or_default();
    let _ = token;
    let destroyed = host
        .service_mut::<WindowManagerService>("window")
        .map(|wm| wm.destroy_surfaces(app.uid))
        .unwrap_or(0);
    let _ = now;
    // The process is frozen once idle so CRIU can dump it.
    kernel
        .freeze(app.main_pid)
        .map_err(|e| BinderError::TransactionFailed {
            interface: "ActivityThread".into(),
            method: "moveToBackground".into(),
            reason: e.to_string(),
        })?;
    Ok(destroyed)
}

/// `handleTrimMemory(TRIM_MEMORY_COMPLETE)`: the full cascade of §3.3.
///
/// The app must already be stopped. Preserved EGL contexts
/// (`setPreserveEGLContextOnPause`) survive, which later makes `eglUnload`
/// — and therefore migration — fail, as the paper describes.
pub fn handle_trim_memory(
    app: &mut App,
    kernel: &mut Kernel,
    host: &mut ServiceHost,
    now: SimTime,
) -> Result<PrepStats, BinderError> {
    let mut stats = PrepStats::default();

    // The WindowManager brackets the trim.
    let token = Parcel::new().with_str(app.activities[0].window_token.clone());
    {
        // The frozen process cannot transact; the trim runs on its behalf
        // through the system (thaw for the RPC window, as the real
        // ActivityThread is still scheduled during trim).
        kernel.thaw(app.main_pid).ok();
        app.call_service(
            kernel,
            host,
            now,
            "window",
            "startTrimMemory",
            token.clone(),
        )?;
    }

    // HardwareRenderer.startTrimMemory: flush caches.
    let mut pmem = std::mem::take(&mut kernel.pmem);
    {
        let proc = kernel.process_mut(app.main_pid).map_err(to_binder)?;
        let flushed = app.gl.flush_caches(proc);
        if !flushed.is_zero() {
            stats.gl_resources += 1;
        }

        // Every ViewRoot terminates its hardware resources; the renderer
        // destroys hardware state and the canvas.
        app.view_root.terminate_hardware_resources();
        app.view_root.invalidate_all();

        // endTrimMemory terminates all (non-preserved) OpenGL contexts.
        let destroyed = app.gl.destroy_contexts(proc, &mut pmem);
        stats.contexts_destroyed = destroyed;
        stats.gl_resources += destroyed;
    }
    kernel.pmem = pmem;

    app.call_service(kernel, host, now, "window", "endTrimMemory", token)?;
    stats.surfaces_destroyed = host
        .service_mut::<WindowManagerService>("window")
        .map(|wm| wm.destroy_surfaces(app.uid))
        .unwrap_or(0);

    kernel.freeze(app.main_pid).map_err(to_binder)?;
    Ok(stats)
}

/// Flux's `eglUnload`: removes the lingering vendor-library state after the
/// renderer is gone (§3.3). Fails if a preserved context kept the library
/// pinned — the Subway Surfers case.
pub fn egl_unload(app: &mut App, kernel: &mut Kernel) -> Result<bool, String> {
    if app.gl.vendor_lib.is_none() {
        return Ok(false);
    }
    let proc = kernel
        .process_mut(app.main_pid)
        .map_err(|e| e.to_string())?;
    app.gl.egl_unload(proc)?;
    Ok(true)
}

/// Conditional re-initialisation after restore: reload the *guest's* vendor
/// GL library, recreate contexts and caches, re-layout and redraw the view
/// hierarchy at the guest resolution, and bring the activity back to the
/// foreground. Returns the number of views redrawn (drives the cost model).
pub fn conditional_reinit(
    app: &mut App,
    kernel: &mut Kernel,
    host: &mut ServiceHost,
    now: SimTime,
    guest_vendor_lib: &str,
    textures: ByteSize,
    contexts: u32,
) -> Result<usize, BinderError> {
    kernel.thaw(app.main_pid).map_err(to_binder)?;

    if contexts > 0 {
        let mut pmem = std::mem::take(&mut kernel.pmem);
        let proc = kernel.process_mut(app.main_pid).map_err(to_binder)?;
        app.gl
            .initialize(proc, guest_vendor_lib, ByteSize::from_mib(2));
        for _ in 0..contexts {
            app.gl.create_context(proc, &mut pmem, textures, 8);
        }
        kernel.pmem = pmem;
    }

    let screen = host
        .service::<WindowManagerService>("window")
        .map(WindowManagerService::screen)
        .unwrap_or((1200, 1920));

    // Re-register the window on the guest WindowManager and lay out.
    let token = app.activities[0].window_token.clone();
    app.call_service(
        kernel,
        host,
        now,
        "window",
        "addWindow",
        Parcel::new().with_str(token.clone()),
    )?;
    app.call_service(
        kernel,
        host,
        now,
        "window",
        "relayout",
        Parcel::new()
            .with_str(token)
            .with_i32(screen.0 as i32)
            .with_i32(screen.1 as i32),
    )?;
    let redrawn = app.view_root.relayout(screen);

    for a in &mut app.activities {
        a.state = ActivityState::Resumed;
    }
    Ok(redrawn)
}

fn to_binder(e: flux_kernel::KernelError) -> BinderError {
    BinderError::TransactionFailed {
        interface: "ActivityThread".into(),
        method: "lifecycle".into(),
        reason: e.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::{launch, AppFootprint};
    use flux_kernel::ProcState as PS;
    use flux_services::{boot_android, ServicesConfig};
    use flux_simcore::Uid;

    fn env() -> (Kernel, ServiceHost, App) {
        let mut kernel = Kernel::new("3.4");
        let mut host = boot_android(&mut kernel, &ServicesConfig::default()).unwrap();
        let app = launch(
            &mut kernel,
            &mut host,
            SimTime::ZERO,
            "com.example.game",
            Uid(10_040),
            &AppFootprint::default(),
            "libGLES_adreno.so",
            19,
        )
        .unwrap();
        (kernel, host, app)
    }

    #[test]
    fn full_preparation_clears_device_specific_state() {
        let (mut kernel, mut host, mut app) = env();
        assert!(kernel
            .process(app.main_pid)
            .unwrap()
            .mem
            .has_device_specific());

        move_to_background(&mut app, &mut kernel, &mut host, SimTime::ZERO).unwrap();
        assert_eq!(app.top_state(), Some(ActivityState::Stopped));

        let stats = handle_trim_memory(&mut app, &mut kernel, &mut host, SimTime::ZERO).unwrap();
        assert_eq!(stats.contexts_destroyed, 1);
        assert!(egl_unload(&mut app, &mut kernel).unwrap());

        let proc = kernel.process(app.main_pid).unwrap();
        assert!(!proc.mem.has_device_specific());
        assert!(kernel.pmem.owned_by(app.main_pid).is_empty());
        assert_eq!(proc.state, PS::Stopped);
    }

    #[test]
    fn preserved_context_blocks_egl_unload() {
        let (mut kernel, mut host, mut app) = env();
        let ctx = app.gl.contexts[0].id;
        app.gl.set_preserve_on_pause(ctx, true);
        move_to_background(&mut app, &mut kernel, &mut host, SimTime::ZERO).unwrap();
        handle_trim_memory(&mut app, &mut kernel, &mut host, SimTime::ZERO).unwrap();
        assert!(egl_unload(&mut app, &mut kernel).is_err());
    }

    #[test]
    fn reinit_lays_out_for_guest_screen() {
        let (mut kernel, mut host, mut app) = env();
        move_to_background(&mut app, &mut kernel, &mut host, SimTime::ZERO).unwrap();
        handle_trim_memory(&mut app, &mut kernel, &mut host, SimTime::ZERO).unwrap();
        egl_unload(&mut app, &mut kernel).unwrap();

        let redrawn = conditional_reinit(
            &mut app,
            &mut kernel,
            &mut host,
            SimTime::ZERO,
            "libGLES_tegra.so",
            ByteSize::from_mib(8),
            1,
        )
        .unwrap();
        assert_eq!(redrawn, AppFootprint::default().views);
        assert_eq!(app.gl.vendor_lib.as_deref(), Some("libGLES_tegra.so"));
        assert_eq!(app.top_state(), Some(ActivityState::Resumed));
        assert_eq!(kernel.process(app.main_pid).unwrap().state, PS::Running);
    }
}
