//! Durable snapshots of serialized service state.
//!
//! A snapshot file (`snap-<events_applied:010>.snap`) is one CRC frame
//! wrapping an opaque payload (the service serializes its state as JSON).
//! The store is deliberately ignorant of the payload's meaning; what it
//! owns is *validity*:
//!
//! * a snapshot is written to a temp file, synced, then renamed into
//!   place, so a kill mid-write leaves either no snapshot or a whole one —
//!   and even a torn rename survivor is caught by the CRC;
//! * on recovery, [`SnapshotStore::newest_valid`] returns the newest
//!   snapshot whose CRC checks out **and** whose `events_applied` does not
//!   exceed the number of events that survived in the journal — a
//!   snapshot "from the future" (its journal suffix was torn away) is
//!   useless, because replay could not reconcile it, so it is skipped in
//!   favour of an older one or a full replay from the log's beginning.

use crate::journal::JournalError;
use crate::wire::{read_frame, write_frame};
use std::path::{Path, PathBuf};

/// A store of durable state snapshots in one directory.
pub struct SnapshotStore {
    dir: PathBuf,
}

fn snapshot_name(events_applied: u64) -> String {
    format!("snap-{events_applied:010}.snap")
}

fn parse_snapshot_name(name: &str) -> Option<u64> {
    name.strip_prefix("snap-")?
        .strip_suffix(".snap")?
        .parse()
        .ok()
}

impl SnapshotStore {
    /// Opens (creating if necessary) the store in `dir`.
    pub fn open(dir: impl Into<PathBuf>) -> Result<Self, JournalError> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(Self { dir })
    }

    /// The directory this store lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Writes a snapshot covering the first `events_applied` journal
    /// events. Atomic: temp file + fsync + rename.
    pub fn write(&self, events_applied: u64, payload: &[u8]) -> Result<(), JournalError> {
        let mut framed = Vec::with_capacity(payload.len() + crate::wire::FRAME_HEADER);
        write_frame(&mut framed, payload);
        let tmp = self
            .dir
            .join(format!(".{}.tmp", snapshot_name(events_applied)));
        let target = self.dir.join(snapshot_name(events_applied));
        {
            use std::io::Write as _;
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(&framed)?;
            f.sync_all()?;
        }
        std::fs::rename(&tmp, &target)?;
        Ok(())
    }

    /// All snapshot event-counts on disk, ascending (valid or not).
    pub fn list(&self) -> Result<Vec<u64>, JournalError> {
        let mut counts = Vec::new();
        for entry in std::fs::read_dir(&self.dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if let Some(count) = parse_snapshot_name(name) {
                counts.push(count);
            }
        }
        // Deterministic order regardless of directory iteration order.
        counts.sort_unstable();
        Ok(counts)
    }

    /// The newest snapshot that is internally valid (CRC) and covers at
    /// most `max_events` journal events. Returns `(events_applied,
    /// payload)`. Corrupt or too-new snapshots are skipped, not errors.
    pub fn newest_valid(&self, max_events: u64) -> Result<Option<(u64, Vec<u8>)>, JournalError> {
        for count in self.list()?.into_iter().rev() {
            if count > max_events {
                continue;
            }
            let path = self.dir.join(snapshot_name(count));
            let bytes = std::fs::read(&path)?;
            match read_frame(&bytes, 0) {
                Ok(Some(frame)) if frame.end == bytes.len() => {
                    return Ok(Some((count, frame.payload.to_vec())));
                }
                // Torn, trailing garbage, or oversized: fall through to an
                // older snapshot.
                _ => continue,
            }
        }
        Ok(None)
    }

    /// Deletes all but the newest `keep` snapshots.
    pub fn prune(&self, keep: usize) -> Result<(), JournalError> {
        let counts = self.list()?;
        if counts.len() <= keep {
            return Ok(());
        }
        for count in &counts[..counts.len() - keep] {
            std::fs::remove_file(self.dir.join(snapshot_name(*count)))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("flux-snapshot-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn write_then_read_newest() {
        let dir = tmp_dir("rw");
        let store = SnapshotStore::open(&dir).unwrap();
        store.write(5, b"state-at-5").unwrap();
        store.write(12, b"state-at-12").unwrap();
        let (count, payload) = store.newest_valid(u64::MAX).unwrap().unwrap();
        assert_eq!((count, payload.as_slice()), (12, &b"state-at-12"[..]));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn future_snapshots_are_skipped() {
        let dir = tmp_dir("future");
        let store = SnapshotStore::open(&dir).unwrap();
        store.write(5, b"old").unwrap();
        store.write(12, b"new").unwrap();
        // Journal only kept 8 events: the 12-event snapshot is from a
        // future that no longer exists.
        let (count, payload) = store.newest_valid(8).unwrap().unwrap();
        assert_eq!((count, payload.as_slice()), (5, &b"old"[..]));
        assert!(store.newest_valid(3).unwrap().is_none());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_snapshot_falls_back_to_older() {
        let dir = tmp_dir("corrupt");
        let store = SnapshotStore::open(&dir).unwrap();
        store.write(5, b"good").unwrap();
        store.write(9, b"soon-corrupt").unwrap();
        let path = dir.join(snapshot_name(9));
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        let (count, _) = store.newest_valid(u64::MAX).unwrap().unwrap();
        assert_eq!(count, 5);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncated_snapshot_is_invalid_at_every_cut() {
        let dir = tmp_dir("cuts");
        let store = SnapshotStore::open(&dir).unwrap();
        store.write(7, b"the-only-state").unwrap();
        let path = dir.join(snapshot_name(7));
        let full = std::fs::read(&path).unwrap();
        for cut in 0..full.len() {
            std::fs::write(&path, &full[..cut]).unwrap();
            assert!(
                store.newest_valid(u64::MAX).unwrap().is_none(),
                "cut at {cut} should invalidate the snapshot"
            );
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn prune_keeps_newest() {
        let dir = tmp_dir("prune");
        let store = SnapshotStore::open(&dir).unwrap();
        for count in [3, 6, 9, 12] {
            store.write(count, b"s").unwrap();
        }
        store.prune(2).unwrap();
        assert_eq!(store.list().unwrap(), vec![9, 12]);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
