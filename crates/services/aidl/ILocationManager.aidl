// LocationManagerService, Flux-decorated. Update requests are re-issued on
// the guest through a proxy that checks whether the guest has the provider
// hardware at all (§3.2: absent hardware may be forwarded over the network
// at the user's option).
interface ILocationManager {
    @record {
        @drop this;
        @if listener;
        @replayproxy \
            flux.recordreplay.Proxies.locationRequest;
    }
    void requestLocationUpdates(in LocationRequest request, in ILocationListener listener, in PendingIntent intent, String packageName);
    @record {
        @drop this, requestLocationUpdates;
        @if listener;
    }
    void removeUpdates(in ILocationListener listener, in PendingIntent intent, String packageName);
    @record { @drop this; @if listener; }
    boolean addGpsStatusListener(in IGpsStatusListener listener, String packageName);
    @record {
        @drop this, addGpsStatusListener;
        @if listener;
    }
    void removeGpsStatusListener(in IGpsStatusListener listener);
    Location getLastLocation(in LocationRequest request, String packageName);
    boolean geocoderIsPresent();
    String getFromLocation(double latitude, double longitude, int maxResults, in GeocoderParams params, out List<Address> addrs);
    List<String> getAllProviders();
    List<String> getProviders(in Criteria criteria, boolean enabledOnly);
    String getBestProvider(in Criteria criteria, boolean enabledOnly);
    boolean isProviderEnabled(String provider);
    ProviderProperties getProviderProperties(String provider);
    boolean sendExtraCommand(String provider, String command, inout Bundle extras);
}
