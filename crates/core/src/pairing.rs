//! The one-time pairing phase (§3.1 and the §4 pairing-cost experiment).
//!
//! Pairing synchronises the home device's core frameworks and libraries to
//! a custom location on the guest's data partition, hard-linking files that
//! are identical to the guest's own system partition (rsync
//! `--link-dest`), then syncs and pseudo-installs each app's APK and data
//! directory so a wrapper app exists for migration-in.

use crate::errors::FluxError;
use crate::world::{DeviceId, FluxWorld, Pairing, WorldError};
use flux_fs::{sync, SyncOptions, SyncReport};
use flux_services::svc::package::{PackageManagerService, PackageRecord};
use flux_simcore::ByteSize;

/// The outcome of one pairing operation.
#[derive(Debug, Clone, PartialEq)]
pub struct PairingReport {
    /// Home → guest direction label.
    pub direction: String,
    /// The constant-data sync of frameworks and libraries.
    pub system_sync: SyncReport,
    /// Combined APK + data sync across all installed apps.
    pub app_sync: SyncReport,
    /// Packages pseudo-installed on the guest.
    pub packages: Vec<String>,
    /// Wall (virtual) time the pairing took, including transfer.
    pub elapsed: flux_simcore::SimDuration,
}

impl PairingReport {
    /// Total bytes that went over the air.
    pub fn bytes_shipped(&self) -> ByteSize {
        self.system_sync.bytes_shipped + self.app_sync.bytes_shipped
    }
}

/// Pairs `home` to `guest`: after this, apps installed on `home` can be
/// migrated to `guest`. Pairing is directional; pair both ways for
/// round-trip migration.
pub fn pair(
    world: &mut FluxWorld,
    home: DeviceId,
    guest: DeviceId,
) -> Result<PairingReport, FluxError> {
    let started = world.clock.now();
    let (home_name, home_system, home_apps, home_wifi) = {
        let h = world.device(home)?;
        let packages: Vec<PackageRecord> = h
            .specs
            .keys()
            .filter_map(|p| {
                h.host
                    .service::<PackageManagerService>("package")
                    .and_then(|pm| pm.package(p).cloned())
            })
            .collect();
        (h.name.clone(), h.fs.clone(), packages, h.profile.wifi)
    };

    let pairing_root = format!("/data/flux/{home_name}");
    let guest_cost = world.device(guest)?.cost.clone();
    let guest_wifi = world.device(guest)?.profile.wifi;

    // 1. Constant data: frameworks and libraries, hard-linked against the
    //    guest's own /system where identical.
    let opts = SyncOptions {
        link_dest: Some("/system".into()),
        ..SyncOptions::default()
    };
    let system_sync = {
        let g = world.device_mut(guest)?;
        sync(
            &home_system,
            "/system",
            &mut g.fs,
            &format!("{pairing_root}/system"),
            &opts,
            &guest_cost,
        )
        .map_err(|e| WorldError::Boot(e.to_string()))?
    };

    // 2. APKs and app data directories; then pseudo-install metadata.
    let app_opts = SyncOptions {
        link_dest: None,
        ..SyncOptions::default()
    };
    let mut app_sync = SyncReport::default();
    let mut packages = Vec::new();
    for record in &home_apps {
        let g = world.device_mut(guest)?;
        let apk = sync(
            &home_system,
            &record.apk_path,
            &mut g.fs,
            &format!("{pairing_root}{}", record.apk_path),
            &app_opts,
            &guest_cost,
        )
        .map_err(|e| WorldError::Boot(e.to_string()))?;
        let data = sync(
            &home_system,
            &format!("/data/data/{}", record.name),
            &mut g.fs,
            &format!("{pairing_root}/data/data/{}", record.name),
            &app_opts,
            &guest_cost,
        )
        .map_err(|e| WorldError::Boot(e.to_string()))?;
        app_sync.absorb(&apk);
        app_sync.absorb(&data);
        g.host
            .service_mut::<PackageManagerService>("package")
            .expect("package service registered")
            .pseudo_install(record);
        // The guest needs the spec too, to re-launch after migration-in.
        if let Some(spec) = world.device(home)?.specs.get(&record.name).cloned() {
            world
                .device_mut(guest)?
                .specs
                .insert(record.name.clone(), spec);
        }
        packages.push(record.name.clone());
    }

    // Charge CPU (hashing/compression) and radio time.
    let cpu = system_sync.cpu_time + app_sync.cpu_time;
    world.clock.charge(cpu);
    let shipped = system_sync.bytes_shipped + app_sync.bytes_shipped;
    let t = world.net.transfer(shipped, &home_wifi, &guest_wifi);
    world.clock.charge(t.duration);

    // Record the pairing on the guest.
    {
        let g = world.device_mut(guest)?;
        let entry = g.pairings.entry(home.0).or_insert_with(Pairing::default);
        entry.root = pairing_root;
        entry.packages.extend(packages.iter().cloned());
    }

    let elapsed = world.clock.now() - started;
    record_fs_metrics(world, &system_sync);
    record_fs_metrics(world, &app_sync);
    world.telemetry.emit(
        world.clock.now(),
        "pairing.complete",
        format!("{home_name} -> guest, {shipped} shipped"),
    );
    Ok(PairingReport {
        direction: format!("{home_name} -> {}", world.device(guest)?.name),
        system_sync,
        app_sync,
        packages,
        elapsed,
    })
}

/// Re-verifies (and re-syncs) one app's APK and data directory before a
/// migration — "Since apps may be updated frequently, the paired APK is
/// verified prior to migration and updated if necessary" (§3.1). Returns
/// the sync report of the verification pass.
pub fn verify_app(
    world: &mut FluxWorld,
    home: DeviceId,
    guest: DeviceId,
    package: &str,
) -> Result<SyncReport, FluxError> {
    let (home_fs, apk_path, data_dir) = {
        let h = world.device(home)?;
        let apk = h
            .host
            .service::<PackageManagerService>("package")
            .and_then(|pm| pm.package(package))
            .map(|r| r.apk_path.clone())
            .ok_or_else(|| WorldError::NoSuchApp(package.to_owned()))?;
        (h.fs.clone(), apk, format!("/data/data/{package}"))
    };
    let root = {
        let g = world.device(guest)?;
        g.pairings
            .get(&home.0)
            .map(|p| p.root.clone())
            .ok_or_else(|| WorldError::Boot("devices are not paired".into()))?
    };
    let guest_cost = world.device(guest)?.cost.clone();
    let opts = SyncOptions {
        link_dest: None,
        ..SyncOptions::default()
    };
    let mut report = SyncReport::default();
    {
        let g = world.device_mut(guest)?;
        let apk = sync(
            &home_fs,
            &apk_path,
            &mut g.fs,
            &format!("{root}{apk_path}"),
            &opts,
            &guest_cost,
        )
        .map_err(|e| WorldError::Boot(e.to_string()))?;
        let data = sync(
            &home_fs,
            &data_dir,
            &mut g.fs,
            &format!("{root}{data_dir}"),
            &opts,
            &guest_cost,
        )
        .map_err(|e| WorldError::Boot(e.to_string()))?;
        report.absorb(&apk);
        report.absorb(&data);
    }
    world.clock.charge(report.cpu_time);
    record_fs_metrics(world, &report);
    Ok(report)
}

/// Accounts one sync run's outcome under the `flux.fs.*` metrics.
fn record_fs_metrics(world: &mut FluxWorld, report: &SyncReport) {
    world
        .telemetry
        .counter_add("flux.fs.files_shipped", report.files_shipped() as u64);
    world
        .telemetry
        .counter_add("flux.fs.files_linked", report.files_linked() as u64);
    world
        .telemetry
        .counter_add("flux.fs.bytes_shipped", report.bytes_shipped.as_u64());
}
