// PowerManagerService, Flux-decorated. Wakelocks held through the service
// are the app-specific state: acquire/release pairs cancel by lock token,
// and surviving acquires are replayed on the guest so it stays awake
// exactly as the home device would have.
interface IPowerManager {
    @record {
        @drop this;
        @if lock;
        @replayproxy flux.recordreplay.Proxies.wakeLockAcquire;
    }
    void acquireWakeLock(in IBinder lock, int flags, String tag, String packageName, in WorkSource ws);
    @record {
        @drop this, acquireWakeLock;
        @if lock;
    }
    void releaseWakeLock(in IBinder lock, int flags);
    @record {
        @drop this;
        @if lock;
    }
    void updateWakeLockWorkSource(in IBinder lock, in WorkSource ws);
    boolean isWakeLockLevelSupported(int level);
    void userActivity(long time, int event, int flags);
    void wakeUp(long time);
    void goToSleep(long time, int reason, int flags);
    void nap(long time);
    boolean isScreenOn();
    void reboot(boolean confirm, String reason, boolean wait);
    void shutdown(boolean confirm, boolean wait);
    void crash(String message);
    @record
    void setStayOnSetting(int val);
    void setMaximumScreenOffTimeoutFromDeviceAdmin(int timeMs);
    void setTemporaryScreenBrightnessSettingOverride(int brightness);
    void setTemporaryScreenAutoBrightnessAdjustmentSettingOverride(float adj);
    void setAttentionLight(boolean on, int color);
    void setScreenBrightnessOverrideFromWindowManager(int brightness);
    void setUserActivityTimeoutOverrideFromWindowManager(long timeoutMillis);
}
