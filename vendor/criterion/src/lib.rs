//! Offline stub of `criterion` 0.5.
//!
//! Supports the API surface the flux benches use — `Criterion`,
//! `benchmark_group`, `bench_function`, `Bencher::iter`/`iter_batched`,
//! `Throughput`, `BatchSize`, `black_box` and the `criterion_group!` /
//! `criterion_main!` macros — with a simple measurement loop: warm up
//! briefly, run a fixed batch of iterations, report mean time per
//! iteration (and throughput where declared). No statistics, plots or
//! comparisons; the goal is that `cargo bench` runs and prints usable
//! numbers without network access.

use std::hint;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer identity, re-exported like criterion's.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Batch sizing hints for `iter_batched` (ignored by the stub).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Declared per-iteration throughput.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// The measurement driver handed to `bench_function` closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    fn new(iters: u64) -> Self {
        Self {
            iters,
            elapsed: Duration::ZERO,
        }
    }

    /// Times `routine` over the configured number of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `routine` against fresh inputs from `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

/// Top-level handle, mirroring `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

const DEFAULT_ITERS: u64 = 200;

fn run_bench(
    label: &str,
    iters: u64,
    throughput: Option<Throughput>,
    f: &mut dyn FnMut(&mut Bencher),
) {
    // One warm-up pass, then the measured pass.
    let mut warmup = Bencher::new(iters.div_ceil(10).max(1));
    f(&mut warmup);
    let mut b = Bencher::new(iters);
    f(&mut b);
    let per_iter = b.elapsed.as_secs_f64() / b.iters as f64;
    let mut line = format!("{label:<40} {:>12.3} ns/iter", per_iter * 1e9);
    if let Some(t) = throughput {
        match t {
            Throughput::Bytes(n) => {
                let mibs = n as f64 / per_iter / (1024.0 * 1024.0);
                line.push_str(&format!("   {mibs:>10.1} MiB/s"));
            }
            Throughput::Elements(n) => {
                let eps = n as f64 / per_iter;
                line.push_str(&format!("   {eps:>10.0} elem/s"));
            }
        }
    }
    println!("{line}");
}

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, label: &str, mut f: F) -> &mut Self {
        run_bench(label, DEFAULT_ITERS, None, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.to_owned(),
            throughput: None,
            sample_size: DEFAULT_ITERS,
        }
    }
}

/// A group of benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: u64,
}

impl BenchmarkGroup<'_> {
    /// Declares the per-iteration throughput for subsequent benches.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Sets the iteration count for subsequent benches.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n as u64;
        self
    }

    /// Runs one named benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, label: &str, mut f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, label);
        run_bench(&full, self.sample_size, self.throughput, &mut f);
        self
    }

    /// Ends the group (no-op in the stub).
    pub fn finish(self) {}
}

/// Collects bench functions into a runnable group, like criterion's.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
