//! The service host: owns service objects and dispatches transactions.
//!
//! The Binder driver (in `flux-kernel`/`flux-binder`) is pure state so CRIA
//! can snapshot it; the host holds the actual service objects of one
//! device's `system_server` process and routes transactions to them. Flux's
//! Selective Record runtime (in `flux-core`) interposes *in front of* this
//! dispatch, exactly where the framework-supplied proxy libraries sit in
//! Android.

use crate::service::{ServiceCtx, SystemService};
use flux_aidl::CompiledInterface;
use flux_binder::{BinderError, NodeId, NodeKind, Parcel};
use flux_kernel::Kernel;
use flux_simcore::{Pid, SimTime, Uid};
use std::collections::BTreeMap;

/// The outcome of one dispatched transaction.
#[derive(Debug)]
pub struct DispatchResult {
    /// Reply parcel, already translated into the caller's handle space.
    pub reply: Parcel,
    /// Events produced by the service during the call.
    pub deliveries: Vec<crate::intent::Delivery>,
}

/// Hosts the system services of one device.
#[derive(Debug)]
pub struct ServiceHost {
    services: Vec<Box<dyn SystemService>>,
    by_node: BTreeMap<NodeId, usize>,
    by_name: BTreeMap<String, usize>,
    interfaces: BTreeMap<String, CompiledInterface>,
    /// PID of the `system_server` process hosting every service.
    pub system_pid: Pid,
}

impl ServiceHost {
    /// Creates a host around an already spawned system-server process.
    pub fn new(system_pid: Pid, interfaces: BTreeMap<String, CompiledInterface>) -> Self {
        Self {
            services: Vec::new(),
            by_node: BTreeMap::new(),
            by_name: BTreeMap::new(),
            interfaces,
            system_pid,
        }
    }

    /// Registers a service: creates its Binder node (owned by the system
    /// server) and adds it to the ServiceManager under its registry name.
    pub fn add_service(
        &mut self,
        kernel: &mut Kernel,
        service: Box<dyn SystemService>,
    ) -> Result<NodeId, BinderError> {
        let node = kernel.binder.create_node(
            self.system_pid,
            NodeKind::Service {
                descriptor: service.descriptor().to_owned(),
            },
        )?;
        kernel.binder.add_service(service.registry_name(), node)?;
        let idx = self.services.len();
        self.by_node.insert(node, idx);
        self.by_name.insert(service.registry_name().to_owned(), idx);
        self.services.push(service);
        Ok(node)
    }

    /// The compiled interface for `descriptor`, if registered.
    pub fn interface(&self, descriptor: &str) -> Option<&CompiledInterface> {
        self.interfaces.get(descriptor)
    }

    /// The compiled interface of the service registered as `name`.
    pub fn interface_of_service(&self, name: &str) -> Option<&CompiledInterface> {
        let idx = *self.by_name.get(name)?;
        self.interfaces.get(self.services[idx].descriptor())
    }

    /// Immutable typed access to a service by registry name.
    pub fn service<T: 'static>(&self, name: &str) -> Option<&T> {
        let idx = *self.by_name.get(name)?;
        self.services[idx].as_any().downcast_ref::<T>()
    }

    /// Mutable typed access to a service by registry name.
    pub fn service_mut<T: 'static>(&mut self, name: &str) -> Option<&mut T> {
        let idx = *self.by_name.get(name)?;
        self.services[idx].as_any_mut().downcast_mut::<T>()
    }

    /// Runs `f` against a service with full context, outside a transaction
    /// (used by the environment for clock ticks, e.g. firing alarms).
    pub fn with_service_ctx<R>(
        &mut self,
        kernel: &mut Kernel,
        now: SimTime,
        name: &str,
        f: impl FnOnce(&mut dyn SystemService, &mut ServiceCtx<'_>) -> R,
    ) -> Option<(R, Vec<crate::intent::Delivery>)> {
        let idx = *self.by_name.get(name)?;
        let system_pid = self.system_pid;
        let mut ctx = ServiceCtx {
            caller_pid: system_pid,
            caller_uid: Uid::SYSTEM,
            now,
            service_pid: system_pid,
            target_node: 0,
            kernel,
            deliveries: Vec::new(),
            new_service_nodes: Vec::new(),
        };
        let r = f(self.services[idx].as_mut(), &mut ctx);
        let deliveries = std::mem::take(&mut ctx.deliveries);
        let new_nodes = std::mem::take(&mut ctx.new_service_nodes);
        for n in new_nodes {
            self.by_node.insert(n, idx);
        }
        Some((r, deliveries))
    }

    /// Dispatches one transaction from `from` through `handle`.
    ///
    /// Routing, reference translation and method validation happen here;
    /// the Selective Record runtime wraps this call to interpose on the
    /// proxy side.
    pub fn dispatch(
        &mut self,
        kernel: &mut Kernel,
        now: SimTime,
        from: Pid,
        handle: u32,
        method: &str,
        args: Parcel,
    ) -> Result<DispatchResult, BinderError> {
        let routed = kernel.binder.route(from, handle, method, args)?;
        let idx =
            *self
                .by_node
                .get(&routed.node)
                .ok_or_else(|| BinderError::TransactionFailed {
                    interface: routed.descriptor.clone().unwrap_or_default(),
                    method: method.to_owned(),
                    reason: "node is not hosted by the service host".into(),
                })?;
        // Validate the method against the registered interface when the
        // target is a primary service node (connection sub-objects have
        // dynamic descriptors and validate inside the service).
        if let Some(desc) = &routed.descriptor {
            if let Some(iface) = self.interfaces.get(desc) {
                if !iface.has_method(method) {
                    return Err(BinderError::TransactionFailed {
                        interface: desc.clone(),
                        method: method.to_owned(),
                        reason: "unknown method".into(),
                    });
                }
            }
        }

        let system_pid = self.system_pid;
        let mut ctx = ServiceCtx {
            caller_pid: routed.from,
            caller_uid: routed.from_uid,
            now,
            service_pid: system_pid,
            target_node: routed.node,
            kernel,
            deliveries: Vec::new(),
            new_service_nodes: Vec::new(),
        };
        let result = self.services[idx].on_call(&mut ctx, &routed.method, &routed.args);
        let deliveries = std::mem::take(&mut ctx.deliveries);
        let new_nodes = std::mem::take(&mut ctx.new_service_nodes);
        drop(ctx);
        for n in new_nodes {
            self.by_node.insert(n, idx);
        }
        let mut reply = result?;
        kernel.binder.translate_incoming(from, &mut reply)?;
        Ok(DispatchResult { reply, deliveries })
    }

    /// Notifies every service that all processes of `uid` died (Binder
    /// death notification equivalent). Returns deliveries produced, if any.
    pub fn notify_uid_death(
        &mut self,
        kernel: &mut Kernel,
        now: SimTime,
        uid: Uid,
    ) -> Vec<crate::intent::Delivery> {
        let system_pid = self.system_pid;
        let mut all = Vec::new();
        for idx in 0..self.services.len() {
            let mut ctx = ServiceCtx {
                caller_pid: system_pid,
                caller_uid: Uid::SYSTEM,
                now,
                service_pid: system_pid,
                target_node: 0,
                kernel,
                deliveries: Vec::new(),
                new_service_nodes: Vec::new(),
            };
            self.services[idx].on_uid_death(&mut ctx, uid);
            all.extend(ctx.deliveries);
        }
        all
    }

    /// Number of registered services.
    pub fn len(&self) -> usize {
        self.services.len()
    }

    /// Whether no services are registered.
    pub fn is_empty(&self) -> bool {
        self.services.is_empty()
    }

    /// Registry names of all hosted services, in registration order.
    pub fn names(&self) -> Vec<&str> {
        self.by_name.keys().map(String::as_str).collect()
    }
}
