//! Collection strategies (`prop::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A length range for collection strategies.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi_exclusive: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        Self {
            lo: r.start,
            hi_exclusive: r.end,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        Self {
            lo: *r.start(),
            hi_exclusive: r.end() + 1,
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self {
            lo: n,
            hi_exclusive: n + 1,
        }
    }
}

/// The strategy returned by [`vec()`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let len = rng.usize_in(self.size.lo, self.size.hi_exclusive);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// A strategy for `Vec`s of `element` with a length drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}
