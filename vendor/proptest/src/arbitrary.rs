//! `any::<T>()` for primitives and tuples of primitives.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::marker::PhantomData;

/// Types with a canonical "any value" strategy.
pub trait Arbitrary {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Printable ASCII keeps generated text debuggable.
        char::from(b' ' + (rng.next_u64() % 95) as u8)
    }
}

macro_rules! tuple_arbitrary {
    ($($s:ident),+) => {
        impl<$($s: Arbitrary),+> Arbitrary for ($($s,)+) {
            fn arbitrary(rng: &mut TestRng) -> Self {
                ($($s::arbitrary(rng),)+)
            }
        }
    };
}

tuple_arbitrary!(A);
tuple_arbitrary!(A, B);
tuple_arbitrary!(A, B, C);
tuple_arbitrary!(A, B, C, D);

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// A strategy producing arbitrary values of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}
