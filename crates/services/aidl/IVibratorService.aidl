// VibratorService, Flux-decorated. Vibrations are short-lived device
// output: a cancel (or a newer request from the same token) makes earlier
// requests irrelevant, and replay rescales timings through a proxy because
// vibration motors differ across devices. Even the capability query is
// recorded: Adaptive Replay consults it when the guest lacks a vibrator.
interface IVibratorService {
    @record
    boolean hasVibrator();

    @record {
        @drop
            this;
        @if token;
        @elif milliseconds;
        @replayproxy \
            flux.recordreplay.Proxies.vibratorReplay;
    }
    void vibrate(long milliseconds, in IBinder token);

    @record {
        @drop
            this;
        @if token;
        @elif repeat;
        @replayproxy \
            flux.recordreplay.Proxies.vibratorPatternReplay;
    }
    void vibratePattern(in long[] pattern, int repeat, in IBinder token);

    @record {
        @drop
              this,
              vibrate,
              vibratePattern;
        @if token;
        @replayproxy \
            flux.recordreplay.Proxies.vibratorCancel;
    }
    void cancelVibrate(in IBinder token);
}
