//! Activities, windows and view hierarchies.
//!
//! §2 of the paper: an activity transitions Resumed → Paused → Stopped; its
//! Window holds a Surface that is destroyed in the Stopped state; a View
//! hierarchy rooted at a ViewRoot redraws the UI. CRIA exploits all three:
//! backgrounding destroys surfaces, trim-memory destroys the ViewRoots'
//! hardware resources, and conditional re-initialisation redraws everything
//! at the guest's resolution after restore.

use serde::{Deserialize, Serialize};

/// Activity lifecycle states (§2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ActivityState {
    /// Foreground, interactive.
    Resumed,
    /// Visible but not interactive; cannot execute code.
    Paused,
    /// Not visible; surface destroyed; placed here by the task idler.
    Stopped,
}

/// One activity of an app.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Activity {
    /// Component name, e.g. `".MainActivity"`.
    pub name: String,
    /// Lifecycle state.
    pub state: ActivityState,
    /// Window token registered with the WindowManager.
    pub window_token: String,
}

/// One view in the hierarchy.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct View {
    /// View class, e.g. `"TextView"`.
    pub class: String,
    /// Whether the view's draw state is valid (invalidated views redraw).
    pub valid: bool,
}

/// A view hierarchy rooted at a ViewRoot.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ViewRoot {
    /// Views in draw order.
    pub views: Vec<View>,
    /// Whether hardware rendering resources are attached.
    pub hardware_resources: bool,
    /// The size the hierarchy was last laid out against.
    pub layout_size: (u32, u32),
}

impl ViewRoot {
    /// Builds a hierarchy of `count` views laid out for `size`.
    pub fn build(count: usize, size: (u32, u32)) -> Self {
        let classes = [
            "FrameLayout",
            "LinearLayout",
            "TextView",
            "ImageView",
            "Button",
        ];
        Self {
            views: (0..count)
                .map(|i| View {
                    class: classes[i % classes.len()].to_owned(),
                    valid: true,
                })
                .collect(),
            hardware_resources: true,
            layout_size: size,
        }
    }

    /// `terminateHardwareResources`: detaches hardware rendering state.
    pub fn terminate_hardware_resources(&mut self) {
        self.hardware_resources = false;
    }

    /// Invalidates every view (they will redraw on next traversal).
    pub fn invalidate_all(&mut self) {
        for v in &mut self.views {
            v.valid = false;
        }
    }

    /// Lays the hierarchy out for a (possibly different) display size and
    /// redraws; returns how many views had to redraw.
    pub fn relayout(&mut self, size: (u32, u32)) -> usize {
        let resized = self.layout_size != size;
        self.layout_size = size;
        let mut redrawn = 0;
        for v in &mut self.views {
            if resized || !v.valid {
                v.valid = true;
                redrawn += 1;
            }
        }
        self.hardware_resources = true;
        redrawn
    }

    /// Number of views with invalid draw state.
    pub fn invalid_count(&self) -> usize {
        self.views.iter().filter(|v| !v.valid).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_creates_requested_views() {
        let root = ViewRoot::build(7, (800, 1280));
        assert_eq!(root.views.len(), 7);
        assert!(root.hardware_resources);
        assert_eq!(root.invalid_count(), 0);
    }

    #[test]
    fn invalidate_then_relayout_redraws_everything() {
        let mut root = ViewRoot::build(5, (800, 1280));
        root.terminate_hardware_resources();
        root.invalidate_all();
        assert_eq!(root.invalid_count(), 5);
        // Restored on a bigger screen: everything redraws at the new size.
        let redrawn = root.relayout((1200, 1920));
        assert_eq!(redrawn, 5);
        assert_eq!(root.layout_size, (1200, 1920));
        assert!(root.hardware_resources);
    }

    #[test]
    fn relayout_same_size_redraws_only_invalid_views() {
        let mut root = ViewRoot::build(4, (800, 1280));
        root.views[1].valid = false;
        assert_eq!(root.relayout((800, 1280)), 1);
    }
}
