//! `flux-prof` — profile one seeded migration and export its telemetry.
//!
//! Runs a single record → pair → migrate scenario (WhatsApp, Nexus 4 →
//! Nexus 7 (2013) by default) with the telemetry hub enabled, then writes
//!
//! * `trace.json` — a Chrome `about://tracing` / Perfetto trace with one
//!   lane per device plus the world lane,
//! * `profile.txt` — the per-stage migration profile table,
//! * `snapshot.json` — the full span/event/metric snapshot.
//!
//! Everything runs in virtual time, so two invocations with the same seed
//! produce byte-identical files — the binary verifies this itself by
//! running the scenario twice, and also checks that the stage spans sum to
//! exactly the migration report's total.
//!
//! ```text
//! flux-prof [--seed N] [--app NAME] [--faults RATE] [--out DIR]
//! ```

use flux_core::{migrate, pair, FluxWorld, MigrationReport, MigrationSpec, WorldBuilder};
use flux_device::DeviceProfile;
use flux_simcore::{FaultConfig, FaultPlan, SimDuration};
use flux_telemetry::{chrome_trace, json_snapshot, MigrationProfile};
use flux_workloads::spec;
use std::process::ExitCode;

/// Command-line options, hand-parsed (the container ships no CLI crates).
struct Options {
    seed: u64,
    app: String,
    fault_rate: Option<f64>,
    out: String,
}

impl Options {
    fn parse(args: &[String]) -> Result<Self, String> {
        let mut opts = Options {
            seed: 42,
            app: "WhatsApp".to_owned(),
            fault_rate: None,
            out: ".".to_owned(),
        };
        let mut it = args.iter();
        while let Some(flag) = it.next() {
            let mut value = |name: &str| {
                it.next()
                    .cloned()
                    .ok_or_else(|| format!("{name} needs a value"))
            };
            match flag.as_str() {
                "--seed" => opts.seed = value("--seed")?.parse().map_err(|e| format!("{e}"))?,
                "--app" => opts.app = value("--app")?,
                "--faults" => {
                    opts.fault_rate = Some(value("--faults")?.parse().map_err(|e| format!("{e}"))?)
                }
                "--out" => opts.out = value("--out")?,
                "--help" | "-h" => {
                    return Err("usage: flux-prof [--seed N] [--app NAME] \
                         [--faults RATE] [--out DIR]"
                        .to_owned())
                }
                other => return Err(format!("unknown flag {other}")),
            }
        }
        Ok(opts)
    }
}

/// One full scenario run; returns the world (telemetry finished and
/// harvested) alongside the migration report.
fn run_scenario(opts: &Options) -> Result<(FluxWorld, MigrationReport), String> {
    let app = spec(&opts.app).ok_or_else(|| format!("unknown app {:?}", opts.app))?;
    let mut builder = WorldBuilder::new()
        .seed(opts.seed)
        .device("home", DeviceProfile::nexus4())
        .device("guest", DeviceProfile::nexus7_2013())
        .app(0, app.clone());
    if let Some(rate) = opts.fault_rate {
        let cfg = FaultConfig::uniform(rate, SimDuration::from_secs(120));
        builder = builder.fault_plan(FaultPlan::generate(opts.seed, &cfg));
    }
    let (mut world, ids) = builder.build().map_err(|e| e.to_string())?;
    let (home, guest) = (ids[0], ids[1]);
    world
        .run_script(home, &app.package, &app.actions.clone())
        .map_err(|e| e.to_string())?;
    pair(&mut world, home, guest).map_err(|e| e.to_string())?;
    let report = migrate(
        &mut world,
        MigrationSpec::new(&app.package).between(home, guest),
    )
    .map_err(|e| e.to_string())?;
    world.harvest_metrics();
    let now = world.clock.now();
    world.telemetry.finish(now);
    Ok((world, report))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match Options::parse(&args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("flux-prof: {e}");
            return ExitCode::FAILURE;
        }
    };

    // Run twice: the second run only exists to prove determinism.
    let (world, report) = match run_scenario(&opts) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("flux-prof: scenario failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let (world2, _) = match run_scenario(&opts) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("flux-prof: repeat run failed: {e}");
            return ExitCode::FAILURE;
        }
    };

    let trace = chrome_trace(&world.telemetry);
    let snapshot = json_snapshot(&world.telemetry);
    let profile = MigrationProfile::from_telemetry(&world.telemetry);

    if chrome_trace(&world2.telemetry) != trace || json_snapshot(&world2.telemetry) != snapshot {
        eprintln!("flux-prof: two runs with seed {} diverged", opts.seed);
        return ExitCode::FAILURE;
    }
    if profile.total() != report.stages.total() {
        eprintln!(
            "flux-prof: stage spans sum to {} but the report says {}",
            profile.total(),
            report.stages.total()
        );
        return ExitCode::FAILURE;
    }
    if flux_telemetry::json::parse(&trace).is_err()
        || flux_telemetry::json::parse(&snapshot).is_err()
    {
        eprintln!("flux-prof: exported JSON does not parse");
        return ExitCode::FAILURE;
    }

    let dir = std::path::Path::new(&opts.out);
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("flux-prof: cannot create {}: {e}", dir.display());
        return ExitCode::FAILURE;
    }
    for (name, body) in [
        ("trace.json", &trace),
        ("snapshot.json", &snapshot),
        ("profile.txt", &profile.render()),
    ] {
        if let Err(e) = std::fs::write(dir.join(name), body) {
            eprintln!("flux-prof: cannot write {name}: {e}");
            return ExitCode::FAILURE;
        }
    }

    println!(
        "flux-prof: {} (seed {}, faults {})",
        opts.app,
        opts.seed,
        opts.fault_rate
            .map_or("off".to_owned(), |r| format!("{r}/s")),
    );
    println!("{}", profile.render());
    println!(
        "report total {} | {} spans | {} instants | {} metrics | outputs in {}",
        report.stages.total(),
        world.telemetry.spans().len(),
        world.telemetry.instants().len(),
        world.telemetry.metrics().len(),
        dir.display(),
    );
    ExitCode::SUCCESS
}
