//! The Figure 16 overhead experiment: Quadrant Standard and SunSpider on
//! Flux vs vanilla AOSP.
//!
//! The paper runs both app benchmarks on all three device types and reports
//! scores normalized to AOSP ≈ 1.0, showing Selective Record's overhead is
//! negligible. Here each benchmark section drives a realistic mix of work:
//! pure compute sections touch no services (so recording can cost nothing),
//! while I/O-ish and 2D/3D sections make service calls where the record
//! interposition sits on the path.

use flux_core::{FluxWorld, WorldBuilder};
use flux_device::DeviceProfile;
use flux_simcore::SimDuration;
use flux_workloads::spec;

/// Normalized scores for one device (1.0 = vanilla AOSP).
#[derive(Debug, Clone, PartialEq)]
pub struct QuadrantScores {
    /// Device label.
    pub device: String,
    /// (section label, normalized score) pairs — the six bars of Fig. 16.
    pub sections: Vec<(String, f64)>,
}

/// Service calls each benchmark section performs per iteration; compute
/// sections also charge pure CPU time that recording cannot touch.
const SECTIONS: [(&str, u64, u64); 6] = [
    // (label, service calls, pure-CPU µs) per iteration.
    ("Quadrant CPU", 0, 900),
    ("Quadrant Mem", 2, 500),
    ("Quadrant I/O", 12, 350),
    ("Quadrant 2D", 6, 400),
    ("Quadrant 3D", 8, 600),
    ("SunSpider", 1, 800),
];

/// Iterations per section.
const ITERS: u64 = 200;

fn run_section(world: &mut FluxWorld, package: &str, calls: u64, cpu_us: u64) -> SimDuration {
    let dev = flux_core::DeviceId(0);
    let start = world.clock.now();
    for i in 0..ITERS {
        world.clock.charge(SimDuration::from_micros(cpu_us));
        for c in 0..calls {
            // A benign recorded call: volume queries route through the
            // decorated AudioService interface.
            let _ = world.app_call(
                dev,
                package,
                "audio",
                "getStreamVolume",
                flux_binder::Parcel::new().with_i32((i % 3) as i32 + (c % 2) as i32),
            );
        }
    }
    world.clock.now() - start
}

/// Runs the suite on one device profile, returning normalized scores.
pub fn run_quadrant_suite(profile: DeviceProfile, seed: u64) -> QuadrantScores {
    let label = profile.model.to_string();
    let app = spec("Twitter").expect("Twitter spec exists");

    let run = |recording: bool| -> Vec<SimDuration> {
        let (mut world, _ids) = WorldBuilder::new()
            .seed(seed)
            .recording(recording)
            .device("bench", profile.clone())
            .app(0, app.clone())
            .build()
            .expect("world builds");
        SECTIONS
            .iter()
            .map(|(_, calls, cpu)| run_section(&mut world, &app.package, *calls, *cpu))
            .collect()
    };

    let aosp = run(false);
    let flux = run(true);
    let sections = SECTIONS
        .iter()
        .zip(aosp.iter().zip(flux.iter()))
        .map(|((label, _, _), (a, f))| {
            // Benchmark *scores* are inverse to time.
            let score = a.as_nanos() as f64 / f.as_nanos() as f64;
            ((*label).to_owned(), score)
        })
        .collect();
    QuadrantScores {
        device: label,
        sections,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overhead_is_negligible_as_in_figure_16() {
        let scores = run_quadrant_suite(DeviceProfile::nexus7_2013(), 3);
        assert_eq!(scores.sections.len(), 6);
        for (label, score) in &scores.sections {
            assert!(
                (0.97..=1.001).contains(score),
                "{label} score {score} out of Figure 16 range"
            );
        }
        // Pure CPU is entirely untouched by recording.
        let cpu = scores
            .sections
            .iter()
            .find(|(l, _)| l == "Quadrant CPU")
            .unwrap();
        assert!((cpu.1 - 1.0).abs() < 1e-9);
    }
}
