//! Fleet-scale concurrent migration scheduling.
//!
//! The paper's evaluation migrates one app between one device pair; a
//! production deployment has many migrations in flight at once, contending
//! for the same radio. A [`FleetScheduler`] accepts a batch of
//! [`MigrationRequest`]s across N devices and drives them concurrently over
//! virtual time:
//!
//! * **Admission control** — at most [`FleetConfig::max_in_flight`]
//!   migrations on the air, and per-device exclusivity: a device can be the
//!   *source* of one migration and the *target* of one migration at a time,
//!   never two of the same role.
//! * **FIFO-with-priority queueing** — requests admit in descending
//!   [`MigrationRequest::priority`], FIFO (ascending request id) within a
//!   class. A request whose devices are busy is skipped, not head-of-line
//!   blocking: later requests backfill the air.
//! * **Shared medium over a cell topology** — every radio window of every
//!   in-flight migration drains a [`RadioMedium`]: a pre-copy round, the
//!   freeze-phase residue and a failed attempt's partial transfer each
//!   contend for the air individually, so K concurrent transfers in one
//!   cell see ~1/K goodput and concurrency is never free. A
//!   [`RadioTopology`] installed via [`FleetScheduler::with_topology`]
//!   splits the air into named cells with per-cell capacity, per-device
//!   association and deterministic mid-transfer roaming; the default is
//!   the original single-cell medium at
//!   [`FleetConfig::medium_capacity_mbps`].
//! * **Retry/rollback composition** — each request carries its own
//!   [`MigrationConfig`] (hence [`RetryPolicy`](crate::RetryPolicy)) and an
//!   optional [`FaultPlan`] expressed *relative to its own start*; a
//!   migration that exhausts its retries rolls back alone, occupying its
//!   devices for the time the attempts and the rollback actually took.
//!
//! # Execution model and determinism
//!
//! The fleet runs on two levels, split behind the [`Executor`] API. An
//! executor *executes* every request of the batch up front, each inside a
//! private two-device *world shard* with a clock opened at the batch
//! start, a forked RNG stream keyed by the request id, and a private
//! telemetry hub — see the [`executor`](crate::executor) module for the
//! shard construction and the conflict-group rule that lets
//! [`ParallelExecutor`](crate::ParallelExecutor) run device-disjoint
//! requests on OS threads. Execution yields a stage-level
//! [slice schedule](crate::Slice) per request: every engine stage the
//! probe observed, cut into CPU stretches and radio windows.
//!
//! The scheduler then re-times that schedule on the shared fleet
//! [`Timeline`] with a per-request *stage cursor*: each CPU slice is an
//! event on the timeline, and each radio window is admitted onto the
//! medium individually, in the cell the request's home device is
//! associated with at that instant. Tens of thousands of migrations
//! therefore interleave on one event queue at stage granularity, rather
//! than as monolithic pre/transfer/post blocks. At admission, the
//! request's shard telemetry is absorbed into the world hub shifted to the
//! admission instant, so spans land where the fleet schedule actually
//! placed them.
//!
//! Per-device exclusivity makes the fleet schedule serialisable, admission
//! order is a pure function of (priority, request id) and completion
//! events, and RNG streams are keyed by request id — never by submission
//! or execution order. A batch therefore produces byte-identical reports
//! and telemetry however its requests were permuted *and whichever
//! executor runs it*; the executor proptests pin serial/parallel
//! byte-identity across worker counts. Simultaneous fleet events are
//! interleaved by a [`Timeline`] keyed on the stable request id (planned
//! roams fire after request events at the same instant, keyed from
//! `u64::MAX` downward). When the batch drains, the world clock advances
//! to the end of the fleet schedule (batch start plus makespan).
//!
//! Uncontended, a fleet radio window drains in exactly its serial air
//! time, so a single-request fleet reproduces a lone [`crate::migrate`]
//! run's stage figures to the nanosecond, provided the lone run uses the
//! same forked RNG stream — the scenario suite pins this.
//!
//! # Examples
//!
//! ```
//! use flux_core::{pair, FleetConfig, FleetScheduler, MigrationRequest, WorldBuilder};
//! use flux_device::DeviceProfile;
//! use flux_workloads::spec;
//!
//! let app = spec("WhatsApp").unwrap();
//! let (mut world, ids) = WorldBuilder::new()
//!     .seed(42)
//!     .device("phone", DeviceProfile::nexus4())
//!     .device("tablet", DeviceProfile::nexus7_2013())
//!     .app(0, app.clone())
//!     .pair(0, 1)
//!     .build()
//!     .unwrap();
//! world.run_script(ids[0], &app.package.clone(), &app.actions.clone()).unwrap();
//!
//! let scheduler = FleetScheduler::new(FleetConfig::default()).unwrap();
//! let batch = vec![MigrationRequest::new(1, ids[0], ids[1], &app.package)];
//! let report = scheduler.run(&mut world, batch).unwrap();
//! assert_eq!(report.completed, 1);
//! assert!(report.makespan > flux_simcore::SimDuration::ZERO);
//! ```

use crate::engine::{ArmAction, SliceCursor, SliceKind};
use crate::errors::FluxError;
use crate::executor::{ExecutedMigration, Executor, SerialExecutor};
use crate::migration::{MigrationConfig, MigrationReport, MigrationStage, StageInterrupt};
use crate::world::{DeviceId, FluxWorld};
use flux_appfw::LifecycleEvent;
use flux_net::{CellTrace, MediumSegment, RadioMedium, RadioTopology};
use flux_simcore::{FaultPlan, SimDuration, SimTime, Timeline};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// One migration the fleet should perform.
#[derive(Debug, Clone)]
pub struct MigrationRequest {
    /// Stable id: the determinism key (event ties, FIFO order, RNG stream
    /// fork) and the name of the request's telemetry lane. Unique within a
    /// batch.
    pub id: u64,
    /// Source device.
    pub home: DeviceId,
    /// Target device.
    pub guest: DeviceId,
    /// Package to migrate.
    pub package: String,
    /// Admission priority: higher admits first; FIFO by id within a class.
    pub priority: u8,
    /// Engine configuration (retry policy, pre-copy, pipelining, cache).
    pub cfg: MigrationConfig,
    /// Fault schedule relative to this migration's own start; the
    /// executor shifts it onto the batch-open instant, where the
    /// request's shard executes. [`FaultPlan::none`] inherits the world's
    /// ambient plan instead.
    pub faults: FaultPlan,
    /// Stage-anchored lifecycle interrupts the engine delivers at slice
    /// boundaries inside the running migration (offsets are relative to
    /// the anchor stage's first entry).
    pub interrupts: Vec<StageInterrupt>,
}

impl MigrationRequest {
    /// A default-engine, priority-0, fault-free request.
    pub fn new(id: u64, home: DeviceId, guest: DeviceId, package: &str) -> Self {
        Self {
            id,
            home,
            guest,
            package: package.to_owned(),
            priority: 0,
            cfg: MigrationConfig::default(),
            faults: FaultPlan::none(),
            interrupts: Vec::new(),
        }
    }

    /// Sets the admission priority.
    pub fn with_priority(mut self, priority: u8) -> Self {
        self.priority = priority;
        self
    }

    /// Sets the engine configuration.
    pub fn with_config(mut self, cfg: MigrationConfig) -> Self {
        self.cfg = cfg;
        self
    }

    /// Sets the request-relative fault schedule.
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Adds a stage-anchored lifecycle interrupt to deliver mid-migration.
    pub fn with_interrupt(
        mut self,
        stage: MigrationStage,
        offset: SimDuration,
        event: LifecycleEvent,
    ) -> Self {
        self.interrupts
            .push(StageInterrupt::at(stage, offset, event));
        self
    }
}

/// Admission and contention knobs for a fleet run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FleetConfig {
    /// Maximum concurrently in-flight migrations. `1` serialises the batch.
    pub max_in_flight: usize,
    /// Aggregate goodput (Mbit/s) of the shared radio medium when no
    /// explicit topology is installed — the capacity of the default
    /// single cell. The default clears a lone campus-WiFi dual-band
    /// transfer (~22 Mbit/s effective) but makes two concurrent transfers
    /// contend. Ignored when [`FleetScheduler::with_topology`] installs a
    /// cell topology.
    pub medium_capacity_mbps: f64,
}

impl Default for FleetConfig {
    fn default() -> Self {
        Self {
            max_in_flight: 4,
            medium_capacity_mbps: 30.0,
        }
    }
}

/// How one fleet request ended.
// One outcome lives per flight for the whole run either way; boxing the
// report would only move the 296 bytes behind a pointer every consumer
// then has to chase.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone)]
pub enum FleetOutcome {
    /// The migration succeeded; the full single-pair report.
    Completed(MigrationReport),
    /// Faults exhausted the retry budget; the migration was rolled back and
    /// the app runs on its home device again.
    RolledBack {
        /// The terminal migration error.
        error: FluxError,
    },
    /// The engine refused the migration pre-flight (not paired, app not
    /// running, §3.3–3.4 restrictions); no device time or air was consumed.
    Refused {
        /// The refusal.
        error: FluxError,
    },
}

/// Serializes as a tagged object: `{"status": "completed", "report":
/// {..}}`, or `{"status": "rolled_back" | "refused", "error": "<reason>"}`.
impl serde::Serialize for FleetOutcome {
    fn serialize(&self, out: &mut String) {
        let mut obj = serde::object(out);
        match self {
            FleetOutcome::Completed(report) => {
                obj.field("status", &"completed").field("report", report);
            }
            FleetOutcome::RolledBack { error } => {
                obj.field("status", &"rolled_back").field("error", error);
            }
            FleetOutcome::Refused { error } => {
                obj.field("status", &"refused").field("error", error);
            }
        }
        obj.end();
    }
}

/// Deserializes the tagged object written by the [`serde::Serialize`]
/// impl. Errors come back as [`FluxError::Recovered`] carrying the
/// serialized reason verbatim.
impl<'de> serde::Deserialize<'de> for FleetOutcome {
    fn deserialize(v: &serde::JsonValue) -> Result<Self, serde::DeError> {
        let status: String = v.read("status")?;
        match status.as_str() {
            "completed" => Ok(FleetOutcome::Completed(v.read("report")?)),
            "rolled_back" => Ok(FleetOutcome::RolledBack {
                error: v.read("error")?,
            }),
            "refused" => Ok(FleetOutcome::Refused {
                error: v.read("error")?,
            }),
            other => Err(serde::DeError::msg(format!(
                "unknown fleet outcome status `{other}`"
            ))),
        }
    }
}

impl FleetOutcome {
    /// Whether the request completed successfully.
    pub fn is_completed(&self) -> bool {
        matches!(self, FleetOutcome::Completed(_))
    }

    /// The single-pair report, when completed.
    pub fn report(&self) -> Option<&MigrationReport> {
        match self {
            FleetOutcome::Completed(r) => Some(r),
            _ => None,
        }
    }
}

/// Where one request spent its time on the fleet timeline.
#[derive(Debug, Clone)]
pub struct FlightRecord {
    /// The request's stable id.
    pub id: u64,
    /// Migrated package.
    pub package: String,
    /// Source device.
    pub home: DeviceId,
    /// Target device.
    pub guest: DeviceId,
    /// Admission priority the request ran at.
    pub priority: u8,
    /// When the batch opened (all requests submit together).
    pub submitted_at: SimTime,
    /// When admission control let the request onto its devices.
    pub admitted_at: SimTime,
    /// When the first slice of its transfer *stage* started (the
    /// verification sync; the freeze-phase radio follows inside the same
    /// bracket). For requests that never reached the transfer stage
    /// (refusals, early rollbacks), the end of their span.
    pub transfer_start: SimTime,
    /// When the last slice of its transfer stage finished draining.
    /// Equals `transfer_start` when the request never reached the stage.
    pub transfer_end: SimTime,
    /// When the request left its devices.
    pub finished_at: SimTime,
    /// How it ended.
    pub outcome: FleetOutcome,
}

impl serde::Serialize for FlightRecord {
    fn serialize(&self, out: &mut String) {
        let mut obj = serde::object(out);
        obj.field("id", &self.id)
            .field("package", &self.package)
            .field("home", &self.home)
            .field("guest", &self.guest)
            .field("priority", &self.priority)
            .field("submitted_at", &self.submitted_at)
            .field("admitted_at", &self.admitted_at)
            .field("transfer_start", &self.transfer_start)
            .field("transfer_end", &self.transfer_end)
            .field("finished_at", &self.finished_at)
            .field("outcome", &self.outcome);
        obj.end();
    }
}

impl<'de> serde::Deserialize<'de> for FlightRecord {
    fn deserialize(v: &serde::JsonValue) -> Result<Self, serde::DeError> {
        Ok(Self {
            id: v.read("id")?,
            package: v.read("package")?,
            home: v.read("home")?,
            guest: v.read("guest")?,
            priority: v.read("priority")?,
            submitted_at: v.read("submitted_at")?,
            admitted_at: v.read("admitted_at")?,
            transfer_start: v.read("transfer_start")?,
            transfer_end: v.read("transfer_end")?,
            finished_at: v.read("finished_at")?,
            outcome: v.read("outcome")?,
        })
    }
}

impl FlightRecord {
    /// Time spent queued before admission.
    pub fn queue_wait(&self) -> SimDuration {
        self.admitted_at.since(self.submitted_at)
    }

    /// Admission-to-finish span.
    pub fn span(&self) -> SimDuration {
        self.finished_at.since(self.admitted_at)
    }
}

/// The result of a whole fleet run.
#[derive(Debug, Clone)]
pub struct FleetReport {
    /// One record per request, ascending by request id.
    pub flights: Vec<FlightRecord>,
    /// When the batch opened.
    pub started_at: SimTime,
    /// Fleet-timeline span from batch open to the last flight's finish.
    pub makespan: SimDuration,
    /// What the same batch would have taken with `max_in_flight = 1` under
    /// the same medium: the sum of every flight's uncontended span, each
    /// radio window priced at its home cell's capacity (association as of
    /// the flight's admission).
    pub serialized_makespan: SimDuration,
    /// Most migrations simultaneously in flight.
    pub peak_in_flight: usize,
    /// The default cell's constant-rate allocation trace (the whole
    /// medium's on a single-cell topology); `cells` carries every cell.
    pub medium: Vec<MediumSegment>,
    /// Per-cell traces: each cell's spec plus its allocation segments.
    pub cells: Vec<CellTrace>,
    /// Requests that completed.
    pub completed: usize,
    /// Requests that rolled back.
    pub rolled_back: usize,
    /// Requests refused pre-flight.
    pub refused: usize,
}

/// Serializes the whole report tree — flights, timing, medium and cell
/// traces — compactly; the throughput bench embeds this verbatim in
/// `BENCH_throughput.json`.
impl serde::Serialize for FleetReport {
    fn serialize(&self, out: &mut String) {
        let mut obj = serde::object(out);
        obj.field("flights", &self.flights)
            .field("started_at", &self.started_at)
            .field("makespan", &self.makespan)
            .field("serialized_makespan", &self.serialized_makespan)
            .field("peak_in_flight", &self.peak_in_flight)
            .field("medium", &self.medium)
            .field("cells", &self.cells)
            .field("completed", &self.completed)
            .field("rolled_back", &self.rolled_back)
            .field("refused", &self.refused);
        obj.end();
    }
}

/// Deserializes the report tree; with [`serde::Serialize`] this gives the
/// byte-identical JSON round-trip that snapshot recovery depends on.
impl<'de> serde::Deserialize<'de> for FleetReport {
    fn deserialize(v: &serde::JsonValue) -> Result<Self, serde::DeError> {
        Ok(Self {
            flights: v.read("flights")?,
            started_at: v.read("started_at")?,
            makespan: v.read("makespan")?,
            serialized_makespan: v.read("serialized_makespan")?,
            peak_in_flight: v.read("peak_in_flight")?,
            medium: v.read("medium")?,
            cells: v.read("cells")?,
            completed: v.read("completed")?,
            rolled_back: v.read("rolled_back")?,
            refused: v.read("refused")?,
        })
    }
}

/// A request occupying its devices, with its [`SliceCursor`] into the
/// executed slice schedule.
struct Active {
    idx: usize,
    admitted_at: SimTime,
    /// The engine-owned walk over the executed schedule: position,
    /// zero-duration skips and the transfer bracket all live here.
    cursor: SliceCursor,
    outcome: FleetOutcome,
}

/// Fleet-timeline events. Request events are keyed by the request id;
/// planned roams are keyed from `u64::MAX` downward so they fire *after*
/// request events due at the same instant.
enum FleetEvent {
    /// The armed CPU slice of a request ran to completion (or its schedule
    /// drained and the request should finish through the event loop).
    SliceDone,
    /// A planned roam: `device` re-associates with cell `cell`, carrying
    /// its in-flight flows.
    Roam { device: u64, cell: String },
}

/// Drives batches of migrations concurrently over virtual time.
///
/// Execution is delegated to the configured [`Executor`] —
/// [`SerialExecutor`] by default, [`ParallelExecutor`](crate::ParallelExecutor)
/// via [`FleetScheduler::with_executor`] — with byte-identical results
/// either way. See the [module docs](self) for the execution model.
#[derive(Debug, Clone)]
pub struct FleetScheduler {
    cfg: FleetConfig,
    topology: Option<RadioTopology>,
    executor: Arc<dyn Executor>,
}

impl FleetScheduler {
    /// Validates `cfg` and builds a scheduler with the default
    /// [`SerialExecutor`].
    ///
    /// # Errors
    ///
    /// [`FluxError::Config`] when `max_in_flight` is zero or the medium
    /// capacity is not strictly positive and finite.
    pub fn new(cfg: FleetConfig) -> Result<Self, FluxError> {
        if cfg.max_in_flight == 0 {
            return Err(FluxError::Config(
                "fleet max_in_flight must be at least 1".into(),
            ));
        }
        if !(cfg.medium_capacity_mbps > 0.0 && cfg.medium_capacity_mbps.is_finite()) {
            return Err(FluxError::Config(format!(
                "fleet medium capacity must be positive, got {}",
                cfg.medium_capacity_mbps
            )));
        }
        Ok(Self {
            cfg,
            topology: None,
            executor: Arc::new(SerialExecutor),
        })
    }

    /// Replaces the executor the scheduler runs batches through.
    pub fn with_executor(mut self, executor: impl Executor + 'static) -> Self {
        self.executor = Arc::new(executor);
        self
    }

    /// Installs a multi-AP cell topology: radio windows contend per cell
    /// (by the home device's association), and the topology's roam plan
    /// fires deterministically on the fleet timeline. Without this, the
    /// medium is a single cell at [`FleetConfig::medium_capacity_mbps`].
    pub fn with_topology(mut self, topology: RadioTopology) -> Self {
        self.topology = Some(topology);
        self
    }

    /// The scheduler's configuration.
    pub fn config(&self) -> &FleetConfig {
        &self.cfg
    }

    /// The installed cell topology, if any.
    pub fn topology(&self) -> Option<&RadioTopology> {
        self.topology.as_ref()
    }

    /// The executor batches run through.
    pub fn executor(&self) -> &dyn Executor {
        &*self.executor
    }

    /// Runs `requests` to completion and returns the fleet report.
    ///
    /// Every request reaches a terminal [`FleetOutcome`]; an individual
    /// migration failing is reported per-flight, not as an `Err`.
    ///
    /// # Errors
    ///
    /// [`FluxError::Config`] when two requests share an id (the id is the
    /// determinism key, so collisions would make tie-breaking ambiguous),
    /// when an installed topology has no cells, or when a request id
    /// collides with the timeline keys reserved for the roam plan.
    pub fn run(
        &self,
        world: &mut FluxWorld,
        requests: Vec<MigrationRequest>,
    ) -> Result<FleetReport, FluxError> {
        let single_cell;
        let topology = match &self.topology {
            Some(t) => {
                if t.cells().is_empty() {
                    return Err(FluxError::Config(
                        "fleet radio topology needs at least one cell".into(),
                    ));
                }
                t
            }
            None => {
                single_cell = RadioTopology::single_cell(self.cfg.medium_capacity_mbps);
                &single_cell
            }
        };
        // Roam events ride the same timeline as request events, keyed from
        // u64::MAX downward; the id spaces must not meet.
        let roam_key_floor = u64::MAX - topology.roam_plan().len() as u64;
        let mut ids = BTreeSet::new();
        for req in &requests {
            if !ids.insert(req.id) {
                return Err(FluxError::Config(format!(
                    "duplicate fleet request id {}",
                    req.id
                )));
            }
            if req.id >= roam_key_floor {
                return Err(FluxError::Config(format!(
                    "fleet request id {} collides with the timeline keys reserved \
                     for the topology's {} planned roam(s)",
                    req.id,
                    topology.roam_plan().len()
                )));
            }
        }

        let start = world.clock.now();
        world
            .telemetry
            .counter_add("flux.fleet.submitted", requests.len() as u64);

        // Execute the whole batch up front: one measured slice schedule per
        // request, in world shards on private clocks (see `crate::executor`).
        let mut execs: Vec<Option<ExecutedMigration>> = self
            .executor
            .execute(world, &requests)
            .into_iter()
            .map(Some)
            .collect();
        debug_assert_eq!(execs.len(), requests.len());

        // Canonical queue order — priority descending, id ascending — is
        // independent of the order `requests` arrived in.
        let mut queue: Vec<usize> = (0..requests.len()).collect();
        queue.sort_by_key(|&i| (std::cmp::Reverse(requests[i].priority), requests[i].id));

        let mut medium = RadioMedium::with_topology(topology, start);
        let mut timeline: Timeline<FleetEvent> = Timeline::new();
        for (i, roam) in topology.roam_plan().iter().enumerate() {
            timeline.schedule(
                start + roam.at,
                u64::MAX - i as u64,
                FleetEvent::Roam {
                    device: roam.device,
                    cell: roam.cell.clone(),
                },
            );
        }
        let mut active: BTreeMap<u64, Active> = BTreeMap::new();
        let mut busy_source: BTreeSet<usize> = BTreeSet::new();
        let mut busy_target: BTreeSet<usize> = BTreeSet::new();
        let mut flights: BTreeMap<u64, FlightRecord> = BTreeMap::new();
        let mut serialized = SimDuration::ZERO;
        let mut violations = 0u64;
        let mut peak = 0usize;
        let mut now = start;
        // Admission bookkeeping: `queue[next_fresh..]` has never been
        // scanned; `parked` holds the already-scanned-but-skipped indices
        // (every parked index precedes every fresh one in canonical order,
        // so scanning parked-then-fresh preserves it). Each pass is
        // O(parked + admitted) instead of O(whole queue).
        let mut parked: Vec<usize> = Vec::new();
        let mut next_fresh = 0usize;

        loop {
            // Admission pass: scan parked, then fresh, in canonical order,
            // admitting everything whose devices are free while slots
            // remain.
            let mut admit = |idx: usize,
                             world: &mut FluxWorld,
                             active: &mut BTreeMap<u64, Active>,
                             medium: &mut RadioMedium,
                             timeline: &mut Timeline<FleetEvent>,
                             busy_source: &mut BTreeSet<usize>,
                             busy_target: &mut BTreeSet<usize>,
                             serialized: &mut SimDuration,
                             violations: &mut u64|
             -> bool {
                let req = &requests[idx];
                let admissible = active.len() < self.cfg.max_in_flight
                    && !busy_source.contains(&req.home.0)
                    && !busy_target.contains(&req.guest.0);
                if !admissible {
                    return false;
                }
                busy_source.insert(req.home.0);
                busy_target.insert(req.guest.0);
                let exec = execs[idx].take().expect("each request admits once");
                // Land the shard's telemetry where the fleet schedule
                // actually placed the request: shard times run from the
                // batch open, so shifting by the queue wait pins the
                // spans to the admission instant, in admission order.
                world.telemetry.absorb(&exec.telemetry, now.since(start));
                let home_cell_capacity =
                    topology.cells()[medium.cell_of(req.home.0 as u64)].capacity_mbps;
                *serialized += isolated_span(&exec, home_cell_capacity);
                *violations += u64::from(exec.violations);
                world.telemetry.counter_add("flux.fleet.admitted", 1);
                let ExecutedMigration {
                    outcome, schedule, ..
                } = exec;
                let mut flight = Active {
                    idx,
                    admitted_at: now,
                    cursor: SliceCursor::new(schedule),
                    outcome,
                };
                arm(&mut flight, req, now, medium, timeline);
                active.insert(req.id, flight);
                true
            };
            let mut still_parked = Vec::with_capacity(parked.len());
            for idx in std::mem::take(&mut parked) {
                if !admit(
                    idx,
                    world,
                    &mut active,
                    &mut medium,
                    &mut timeline,
                    &mut busy_source,
                    &mut busy_target,
                    &mut serialized,
                    &mut violations,
                ) {
                    still_parked.push(idx);
                }
            }
            parked = still_parked;
            while active.len() < self.cfg.max_in_flight && next_fresh < queue.len() {
                let idx = queue[next_fresh];
                next_fresh += 1;
                if !admit(
                    idx,
                    world,
                    &mut active,
                    &mut medium,
                    &mut timeline,
                    &mut busy_source,
                    &mut busy_target,
                    &mut serialized,
                    &mut violations,
                ) {
                    parked.push(idx);
                }
            }
            peak = peak.max(active.len());
            let queued = parked.len() + (queue.len() - next_fresh);
            world
                .telemetry
                .gauge_set("flux.fleet.queue_depth", queued as f64);

            if active.is_empty() {
                // Nothing in flight and (with max_in_flight >= 1 and all
                // devices free) nothing admissible: the queue is drained.
                debug_assert_eq!(queued, 0);
                break;
            }

            // Advance the fleet clock to the next interesting instant.
            let next = [medium.next_completion().map(|(t, _)| t), timeline.next_at()]
                .into_iter()
                .flatten()
                .min()
                .expect("active flights always have a pending event");
            medium.advance(next);
            now = next;

            // Drained radio windows first (they free air for flows joining
            // at the same instant), then due timeline events, both in
            // ascending key order — so request events precede same-instant
            // roams.
            for id in medium.take_completed() {
                step_flight(
                    id,
                    now,
                    start,
                    world,
                    &requests,
                    &mut active,
                    &mut medium,
                    &mut timeline,
                    &mut busy_source,
                    &mut busy_target,
                    &mut flights,
                );
            }
            while let Some((_, key, event)) = timeline.pop_due(now) {
                match event {
                    FleetEvent::SliceDone => step_flight(
                        key,
                        now,
                        start,
                        world,
                        &requests,
                        &mut active,
                        &mut medium,
                        &mut timeline,
                        &mut busy_source,
                        &mut busy_target,
                        &mut flights,
                    ),
                    FleetEvent::Roam { device, cell } => medium.roam(device, &cell),
                }
            }
        }

        let makespan = now.since(start);
        // Execution happened on private shard clocks; the world clock owes
        // the fleet schedule's span.
        world.clock.advance_to(start + makespan);
        world
            .telemetry
            .observe("flux.fleet.makespan_ms", makespan.as_millis());
        world
            .telemetry
            .gauge_set("flux.fleet.peak_in_flight", peak as f64);
        if violations > 0 {
            // Probe windows escaped a measured wall somewhere: the slices
            // were clamped so the schedule stayed consistent, but the shape
            // is suspect. Zero on every healthy run (and not emitted then,
            // so healthy telemetry bytes are unchanged).
            world
                .telemetry
                .counter_add("flux.fleet.accounting_violations", violations);
        }

        let flights: Vec<FlightRecord> = flights.into_values().collect();
        let completed = flights.iter().filter(|f| f.outcome.is_completed()).count();
        let rolled_back = flights
            .iter()
            .filter(|f| matches!(f.outcome, FleetOutcome::RolledBack { .. }))
            .count();
        let refused = flights
            .iter()
            .filter(|f| matches!(f.outcome, FleetOutcome::Refused { .. }))
            .count();
        Ok(FleetReport {
            flights,
            started_at: start,
            makespan,
            serialized_makespan: serialized,
            peak_in_flight: peak,
            medium: medium.segments().to_vec(),
            cells: medium.cell_traces(),
            completed,
            rolled_back,
            refused,
        })
    }
}

/// Arms the flight's cursor slice: a CPU slice becomes a timeline event at
/// its completion instant; a radio window is admitted onto the medium in
/// the home device's cell. Zero-duration slices are skipped. A drained
/// schedule arms a same-instant [`FleetEvent::SliceDone`] so the flight
/// finishes through the event loop (keeping same-instant ordering keyed by
/// request id).
fn arm(
    flight: &mut Active,
    req: &MigrationRequest,
    now: SimTime,
    medium: &mut RadioMedium,
    timeline: &mut Timeline<FleetEvent>,
) {
    match flight.cursor.arm(now) {
        ArmAction::Cpu { dur } => {
            timeline.schedule(now + dur, req.id, FleetEvent::SliceDone);
        }
        ArmAction::Transfer { bytes, dur } => {
            medium.admit_from(req.id, req.home.0 as u64, bytes, dur);
        }
        ArmAction::Drained => {
            timeline.schedule(now, req.id, FleetEvent::SliceDone);
        }
    }
}

/// Advances one flight past its just-completed slice: marks the transfer
/// bracket, arms the next slice, or — when the schedule has drained —
/// releases the devices and records the flight.
#[allow(clippy::too_many_arguments)]
fn step_flight(
    id: u64,
    now: SimTime,
    submitted_at: SimTime,
    world: &mut FluxWorld,
    requests: &[MigrationRequest],
    active: &mut BTreeMap<u64, Active>,
    medium: &mut RadioMedium,
    timeline: &mut Timeline<FleetEvent>,
    busy_source: &mut BTreeSet<usize>,
    busy_target: &mut BTreeSet<usize>,
    flights: &mut BTreeMap<u64, FlightRecord>,
) {
    let flight = active.get_mut(&id).expect("completed slice has a flight");
    if flight.cursor.step(now) {
        // The cursor advanced; arm the next slice (or, if it drained the
        // tail, the same-instant finishing event — the flight stays
        // active until it fires).
        let req = &requests[flight.idx];
        arm(flight, req, now, medium, timeline);
        return;
    }
    let flight = active.remove(&id).expect("finished flight is active");
    let req = &requests[flight.idx];
    busy_source.remove(&req.home.0);
    busy_target.remove(&req.guest.0);
    let record = finish_flight(world, req, flight, submitted_at, now);
    flights.insert(id, record);
}

/// Runs `requests` under [`FleetConfig::default`].
///
/// # Errors
///
/// As for [`FleetScheduler::run`].
pub fn run_fleet(
    world: &mut FluxWorld,
    requests: Vec<MigrationRequest>,
) -> Result<FleetReport, FluxError> {
    FleetScheduler::new(FleetConfig::default())?.run(world, requests)
}

/// A flight's span had it run alone in its home cell — exactly the slice a
/// `max_in_flight = 1` schedule would give it on a roam-free topology: CPU
/// slices at face value, radio windows at the cell's solo drain.
fn isolated_span(exec: &ExecutedMigration, home_cell_capacity: f64) -> SimDuration {
    exec.schedule
        .iter()
        .map(|s| match s.kind {
            SliceKind::Cpu => s.dur,
            SliceKind::Transfer { bytes } => {
                RadioMedium::solo_drain(home_cell_capacity, bytes, s.dur)
            }
        })
        .fold(SimDuration::ZERO, |acc, d| acc + d)
}

/// Emits the flight's telemetry lane and builds its record.
fn finish_flight(
    world: &mut FluxWorld,
    req: &MigrationRequest,
    flight: Active,
    submitted_at: SimTime,
    finished_at: SimTime,
) -> FlightRecord {
    let transfer_start = flight.cursor.transfer_start().unwrap_or(finished_at);
    let transfer_end = flight.cursor.transfer_end().unwrap_or(finished_at);
    let lane = world.telemetry.lane(&format!("fleet.m{:03}", req.id));
    world
        .telemetry
        .record_complete(lane, "fleet.queued", submitted_at, flight.admitted_at);
    world
        .telemetry
        .record_complete(lane, "fleet.pre", flight.admitted_at, transfer_start);
    if transfer_end > transfer_start {
        world
            .telemetry
            .record_complete(lane, "fleet.transfer", transfer_start, transfer_end);
    }
    world
        .telemetry
        .record_complete(lane, "fleet.post", transfer_end, finished_at);
    let counter = match flight.outcome {
        FleetOutcome::Completed(_) => "flux.fleet.completed",
        FleetOutcome::RolledBack { .. } => "flux.fleet.rolled_back",
        FleetOutcome::Refused { .. } => "flux.fleet.refused",
    };
    world.telemetry.counter_add(counter, 1);
    world.telemetry.observe(
        "flux.fleet.queue_wait_ms",
        flight.admitted_at.since(submitted_at).as_millis(),
    );
    FlightRecord {
        id: req.id,
        package: req.package.clone(),
        home: req.home,
        guest: req.guest,
        priority: req.priority,
        submitted_at,
        admitted_at: flight.admitted_at,
        transfer_start,
        transfer_end,
        finished_at,
        outcome: flight.outcome,
    }
}
