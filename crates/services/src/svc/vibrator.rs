//! The VibratorService.

use crate::service::{ServiceCtx, SystemService};
use flux_binder::{BinderError, Parcel};
use flux_simcore::Uid;
use std::any::Any;

/// A live vibration request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Vibration {
    /// Requesting app.
    pub uid: Uid,
    /// Request token identity.
    pub token: String,
    /// Remaining duration in ms (single-shot) or the repeat pattern.
    pub pattern: Vec<i64>,
}

/// The vibrator service state.
#[derive(Debug)]
pub struct VibratorService {
    has_vibrator: bool,
    current: Option<Vibration>,
}

impl VibratorService {
    /// Creates the service; `has_vibrator` from the device inventory.
    pub fn new(has_vibrator: bool) -> Self {
        Self {
            has_vibrator,
            current: None,
        }
    }

    /// The active vibration, if any.
    pub fn current(&self) -> Option<&Vibration> {
        self.current.as_ref()
    }
}

impl SystemService for VibratorService {
    fn descriptor(&self) -> &'static str {
        "IVibratorService"
    }

    fn registry_name(&self) -> &'static str {
        "vibrator"
    }

    fn on_call(
        &mut self,
        ctx: &mut ServiceCtx<'_>,
        method: &str,
        args: &Parcel,
    ) -> Result<Parcel, BinderError> {
        match method {
            "hasVibrator" => Ok(Parcel::new().with_bool(self.has_vibrator)),
            "vibrate" => {
                let millis = args.i64(0)?;
                let token = format!("{}", args.get(1)?.clone());
                if self.has_vibrator {
                    self.current = Some(Vibration {
                        uid: ctx.caller_uid,
                        token,
                        pattern: vec![millis],
                    });
                }
                Ok(Parcel::new())
            }
            "vibratePattern" => {
                let pattern: Vec<i64> = args
                    .blob(0)?
                    .chunks_exact(8)
                    .map(|c| i64::from_le_bytes(c.try_into().expect("chunk is 8 bytes")))
                    .collect();
                let token = format!("{}", args.get(2)?.clone());
                if self.has_vibrator {
                    self.current = Some(Vibration {
                        uid: ctx.caller_uid,
                        token,
                        pattern,
                    });
                }
                Ok(Parcel::new())
            }
            "cancelVibrate" => {
                let token = format!("{}", args.get(0)?.clone());
                if self
                    .current
                    .as_ref()
                    .is_some_and(|v| v.token == token && v.uid == ctx.caller_uid)
                {
                    self.current = None;
                }
                Ok(Parcel::new())
            }
            other => Err(ctx.fail(self.descriptor(), other, "unhandled method")),
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}
