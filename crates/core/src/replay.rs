//! The Adaptive Replay engine.
//!
//! "During resume, the recorded app calls are adaptively replayed through
//! Flux's service contextualization proxy to match the guest OS's system
//! services" (§1). Replay walks the record log in order; methods decorated
//! with `@replayproxy` dispatch to the proxies implemented here — the Rust
//! equivalents of the paper's `flux.recordreplay.Proxies` methods — which
//! adapt calls to the guest device: expired alarms are skipped (Figure 10),
//! volume indices are rescaled to the guest's range, sensor connections are
//! recreated and mapped onto the app's original Binder handles and event
//! descriptors, and calls to absent hardware are network-forwarded or
//! dropped per policy.

use crate::errors::FluxError;
use crate::record::{CallLog, CallRecord};
use crate::world::{DeviceId, FluxWorld, WorldError};
use flux_binder::{BinderError, ObjRef, Value};
use flux_device::DeviceProfile;
use flux_simcore::SimTime;

/// Statistics from one replay run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ReplayStats {
    /// Calls replayed verbatim.
    pub replayed: u64,
    /// Calls routed through a contextualisation proxy.
    pub proxied: u64,
    /// Calls skipped (expired alarms, absent hardware without forwarding).
    pub skipped: u64,
    /// Human-readable adaptation notes.
    pub notes: Vec<String>,
}

impl serde::Serialize for ReplayStats {
    fn serialize(&self, out: &mut String) {
        let mut obj = serde::object(out);
        obj.field("replayed", &self.replayed)
            .field("proxied", &self.proxied)
            .field("skipped", &self.skipped)
            .field("notes", &self.notes);
        obj.end();
    }
}

impl<'de> serde::Deserialize<'de> for ReplayStats {
    fn deserialize(v: &serde::JsonValue) -> Result<Self, serde::DeError> {
        Ok(Self {
            replayed: v.read("replayed")?,
            proxied: v.read("proxied")?,
            skipped: v.read("skipped")?,
            notes: v.read("notes")?,
        })
    }
}

impl ReplayStats {
    /// Total log entries visited.
    pub fn total(&self) -> u64 {
        self.replayed + self.proxied + self.skipped
    }
}

/// Replays `log` for `package` on the guest device.
///
/// Replayed calls flow through the normal Selective Record interposition,
/// so the *guest's* record log is rebuilt as a side effect — which is what
/// makes a later migration (e.g. back to the home device) possible.
pub fn replay_log(
    world: &mut FluxWorld,
    guest: DeviceId,
    package: &str,
    log: &CallLog,
    checkpoint_time: SimTime,
    home_profile: &DeviceProfile,
) -> Result<ReplayStats, FluxError> {
    let mut stats = ReplayStats::default();
    let guest_profile = world.device(guest)?.profile.clone();
    let guest_lane = world.device(guest)?.lane;
    for entry in log.entries() {
        let span = world.telemetry.enter(
            guest_lane,
            &format!("replay.svc.{}", entry.service),
            world.clock.now(),
        );
        let proxy = world
            .device(guest)?
            .host
            .interface(&entry.descriptor)
            .and_then(|i| i.rule(&entry.method))
            .and_then(|r| r.replay_proxy.clone());
        let outcome = match proxy {
            None => world
                .app_call(
                    guest,
                    package,
                    &entry.service,
                    &entry.method,
                    entry.args.clone(),
                )
                .map(|_| {
                    stats.replayed += 1;
                }),
            Some(path) => apply_proxy(
                world,
                guest,
                package,
                &path,
                entry,
                checkpoint_time,
                home_profile,
                &guest_profile,
                &mut stats,
            ),
        };
        world.telemetry.exit(span, world.clock.now());
        outcome?;
    }
    world
        .telemetry
        .counter_add("flux.replay.calls_replayed", stats.replayed);
    world
        .telemetry
        .counter_add("flux.replay.calls_proxied", stats.proxied);
    world
        .telemetry
        .counter_add("flux.replay.calls_skipped", stats.skipped);
    Ok(stats)
}

/// Dispatches one `@replayproxy` invocation. The proxy name is the last
/// path segment (`flux.recordreplay.Proxies.<name>`).
#[allow(clippy::too_many_arguments)]
fn apply_proxy(
    world: &mut FluxWorld,
    guest: DeviceId,
    package: &str,
    path: &str,
    entry: &CallRecord,
    checkpoint_time: SimTime,
    home: &DeviceProfile,
    guest_profile: &DeviceProfile,
    stats: &mut ReplayStats,
) -> Result<(), FluxError> {
    let name = path.rsplit('.').next().unwrap_or(path);
    match name {
        // Figure 10: skip alarms that expired before the checkpoint; the
        // comparison is against checkpoint time, not current time, so an
        // alarm due mid-migration still fires on the guest.
        "alarmMgrSet" => {
            let trigger_ms = entry.args.i64(1).map_err(BinderError::from)?;
            if trigger_ms <= checkpoint_time.as_millis() as i64 {
                stats.skipped += 1;
                stats.notes.push(format!(
                    "alarm {:?} already triggered; not re-set",
                    entry.args.str(2).unwrap_or("?")
                ));
            } else {
                world.app_call(
                    guest,
                    package,
                    &entry.service,
                    &entry.method,
                    entry.args.clone(),
                )?;
                stats.proxied += 1;
            }
        }
        // The guest's wall clock and user-visible settings win.
        "wallClockSet" => {
            stats.skipped += 1;
            stats
                .notes
                .push("setTime skipped: guest clock authoritative".into());
        }
        // Volume indices are rescaled between the devices' ranges.
        "audioSetStream" => {
            let home_max = audio_max(home);
            let guest_max = audio_max(guest_profile);
            let stream = entry.args.i32(0).map_err(BinderError::from)?;
            let index = entry.args.i32(1).map_err(BinderError::from)?;
            let rescaled = ((index as f64) * (guest_max as f64) / (home_max as f64)).round() as i32;
            let mut args = entry.args.clone();
            args.values_mut()[1] = Value::I32(rescaled);
            world.app_call(guest, package, &entry.service, &entry.method, args)?;
            stats.proxied += 1;
            if rescaled != index {
                stats.notes.push(format!(
                    "volume stream {stream}: {index}/{home_max} -> {rescaled}/{guest_max}"
                ));
            }
        }
        // The SensorService handle-mapping proxies (§3.2).
        "sensorEventConnection" => {
            let reply = world.app_call(
                guest,
                package,
                &entry.service,
                &entry.method,
                entry.args.clone(),
            )?;
            let new_handle = match reply.object(0).map_err(BinderError::from)? {
                ObjRef::Handle(h) => h,
                other => {
                    return Err(FluxError::World(WorldError::Binder(
                        BinderError::TransactionFailed {
                            interface: entry.descriptor.clone(),
                            method: entry.method.clone(),
                            reason: format!("expected handle reply, got {other:?}"),
                        },
                    )))
                }
            };
            let old_handle = match entry.reply.object(0).map_err(BinderError::from)? {
                ObjRef::Handle(h) => h,
                other => {
                    return Err(FluxError::World(WorldError::Binder(
                        BinderError::TransactionFailed {
                            interface: entry.descriptor.clone(),
                            method: entry.method.clone(),
                            reason: format!("recorded reply had no handle: {other:?}"),
                        },
                    )))
                }
            };
            // Map the fresh connection onto the handle id the app held
            // before migration.
            let dev = world.device_mut(guest)?;
            let app_pid = dev
                .apps
                .get(package)
                .ok_or_else(|| WorldError::NoSuchApp(package.to_owned()))?
                .main_pid;
            if new_handle != old_handle {
                let node = dev
                    .kernel
                    .binder
                    .resolve_handle(app_pid, new_handle)
                    .map_err(WorldError::Binder)?;
                dev.kernel
                    .binder
                    .release_ref(app_pid, new_handle)
                    .map_err(WorldError::Binder)?;
                dev.kernel
                    .binder
                    .inject_ref_at(app_pid, old_handle, node, 1)
                    .map_err(WorldError::Binder)?;
            }
            stats.proxied += 1;
            stats.notes.push(format!(
                "SensorEventConnection remapped to handle {old_handle}"
            ));
        }
        "sensorChannel" => {
            let reply = world.app_call(
                guest,
                package,
                &entry.service,
                &entry.method,
                entry.args.clone(),
            )?;
            let new_fd = reply.fd(0).map_err(BinderError::from)?;
            let old_fd = entry.reply.fd(0).map_err(BinderError::from)?;
            if new_fd != old_fd {
                let dev = world.device_mut(guest)?;
                let app_pid = dev
                    .apps
                    .get(package)
                    .ok_or_else(|| WorldError::NoSuchApp(package.to_owned()))?
                    .main_pid;
                let proc = dev
                    .kernel
                    .process_mut(app_pid)
                    .map_err(|e| WorldError::Boot(e.to_string()))?;
                // dup2 the new channel into the reserved original number.
                proc.fds
                    .dup2(new_fd, old_fd)
                    .map_err(|e| WorldError::Boot(e.to_string()))?;
                proc.fds
                    .close(new_fd)
                    .map_err(|e| WorldError::Boot(e.to_string()))?;
            }
            stats.proxied += 1;
            stats
                .notes
                .push(format!("sensor channel dup2'd into fd {old_fd}"));
        }
        // GPS-style absent hardware: forward over the network or drop.
        "locationRequest" => {
            let provider = entry.args.str(0).map_err(BinderError::from)?.to_owned();
            if provider == "gps" && !guest_profile.hardware.gps {
                if world.policy.forward_missing_hardware {
                    let mut args = entry.args.clone();
                    args.values_mut()[0] = Value::Str("network-forwarded:gps".into());
                    world.app_call(guest, package, &entry.service, &entry.method, args)?;
                    stats.proxied += 1;
                    stats
                        .notes
                        .push("GPS absent on guest; forwarded over the network".into());
                } else {
                    stats.skipped += 1;
                    stats
                        .notes
                        .push("GPS absent on guest; request dropped".into());
                }
            } else {
                world.app_call(
                    guest,
                    package,
                    &entry.service,
                    &entry.method,
                    entry.args.clone(),
                )?;
                stats.proxied += 1;
            }
        }
        // Vibration on a device without a motor.
        "vibratorReplay" | "vibratorPatternReplay" | "vibratorCancel" => {
            if guest_profile.hardware.vibrator {
                world.app_call(
                    guest,
                    package,
                    &entry.service,
                    &entry.method,
                    entry.args.clone(),
                )?;
                stats.proxied += 1;
            } else {
                stats.skipped += 1;
                stats
                    .notes
                    .push("no vibrator on guest; call dropped".into());
            }
        }
        // Camera hardware check.
        "cameraConnect" | "cameraConnectDevice" | "cameraParameters" => {
            if guest_profile.hardware.cameras > 0 {
                world.app_call(
                    guest,
                    package,
                    &entry.service,
                    &entry.method,
                    entry.args.clone(),
                )?;
                stats.proxied += 1;
            } else {
                stats.skipped += 1;
                stats.notes.push("no camera on guest; call dropped".into());
            }
        }
        // Guest-side configuration wins; the re-layout path handles it.
        "amsConfiguration" | "amsOrientation" => {
            stats.skipped += 1;
            stats.notes.push(format!(
                "{} skipped: guest configuration applies",
                entry.method
            ));
        }
        // Everything else re-issues the recorded call against the guest's
        // service (the arguments already carry stable identities).
        _ => {
            world.app_call(
                guest,
                package,
                &entry.service,
                &entry.method,
                entry.args.clone(),
            )?;
            stats.proxied += 1;
        }
    }
    Ok(())
}

/// The maximum volume index of a device (phones and tablets ship different
/// volume curves; see `Device::services_config`).
pub fn audio_max(profile: &DeviceProfile) -> i32 {
    if profile.hardware.vibrator {
        15
    } else {
        25
    }
}
