//! WiFi adapters and the device-to-device transfer model.

use flux_simcore::{ByteSize, FaultPlan, SimDuration, SimRng, SimTime};
use serde::{Deserialize, Serialize};

/// Default chunk size for acknowledged, resumable transfers.
pub const DEFAULT_CHUNK: ByteSize = ByteSize::from_kib(256);

/// 802.11 standard of an adapter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum WifiStandard {
    /// 802.11n (all devices in the paper's evaluation).
    N,
    /// 802.11ac (the Nexus 5 the paper points to as the future).
    Ac,
}

/// Radio band an association uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Band {
    /// 2.4 GHz — "extremely congested" on the paper's campus network.
    Ghz2_4,
    /// 5 GHz — far less contended.
    Ghz5,
}

/// One device's WiFi adapter.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WifiAdapter {
    /// Link standard.
    pub standard: WifiStandard,
    /// Whether the adapter can use the 5 GHz band. The 2012 Nexus 7
    /// cannot, which is why its migrations are the slowest (§4).
    pub dual_band: bool,
    /// Negotiated PHY link rate in Mbit/s.
    pub link_mbps: f64,
}

impl WifiAdapter {
    /// The band this adapter associates on in the simulated environment.
    pub fn band(&self) -> Band {
        if self.dual_band {
            Band::Ghz5
        } else {
            Band::Ghz2_4
        }
    }
}

/// Statistics of one completed transfer.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TransferStats {
    /// Bytes moved.
    pub bytes: ByteSize,
    /// Wall (virtual) time the transfer took.
    pub duration: SimDuration,
    /// Achieved goodput in Mbit/s.
    pub goodput_mbps: f64,
}

/// A shared wireless environment two paired devices communicate through.
///
/// Throughput is `min(endpoint rates)` where each endpoint's effective rate
/// is its link rate degraded by MAC efficiency, band congestion and
/// per-transfer jitter. The defaults are calibrated against the paper's
/// observation that transfer dominates migration (>50 % of 7.88 s average)
/// while moving at most 14 MB.
#[derive(Debug, Clone)]
pub struct NetworkEnv {
    /// Fraction of theoretical MAC throughput actually achieved (rate
    /// adaptation, contention, TCP overhead).
    pub mac_efficiency: f64,
    /// Multiplier applied on the 2.4 GHz band (campus congestion).
    pub congestion_2_4: f64,
    /// Multiplier applied on the 5 GHz band.
    pub congestion_5: f64,
    /// Fixed per-transfer setup latency (association is already up; this is
    /// connection setup plus protocol handshake).
    pub setup_latency: SimDuration,
    /// Multiplicative jitter range around 1.0 (e.g. 0.12 = ±12 %).
    pub jitter: f64,
    rng: SimRng,
}

impl NetworkEnv {
    /// A campus-WiFi environment with the calibrated defaults.
    pub fn campus(seed: u64) -> Self {
        Self {
            mac_efficiency: 0.42,
            congestion_2_4: 0.38,
            congestion_5: 0.82,
            setup_latency: SimDuration::from_millis(120),
            jitter: 0.12,
            rng: SimRng::seed(seed),
        }
    }

    /// An uncontended lab network (used by ablation benches).
    pub fn quiet(seed: u64) -> Self {
        Self {
            mac_efficiency: 0.55,
            congestion_2_4: 0.9,
            congestion_5: 0.95,
            setup_latency: SimDuration::from_millis(60),
            jitter: 0.03,
            rng: SimRng::seed(seed),
        }
    }

    /// Derives a child RNG from the environment's jitter stream, labelled
    /// by `stream` — the [`SimRng::fork`] discipline. Consumes exactly one
    /// draw from the environment regardless of how many children are later
    /// derived from the fork, which is what lets a fleet executor hand
    /// every request an independent stream while perturbing the world's
    /// stream by a fixed, batch-size-independent amount.
    pub fn fork_rng(&mut self, stream: u64) -> SimRng {
        self.rng.fork(stream)
    }

    /// Replaces the environment's jitter stream. Used to build per-request
    /// shard environments (and, in tests, reference worlds that must draw
    /// the same jitter a shard would).
    pub fn set_rng(&mut self, rng: SimRng) {
        self.rng = rng;
    }

    /// A clone of this environment drawing from `rng` instead of the
    /// shared stream.
    pub fn with_rng(&self, rng: SimRng) -> Self {
        let mut env = self.clone();
        env.rng = rng;
        env
    }

    /// The effective one-way rate of `adapter` in this environment, in
    /// Mbit/s, before jitter.
    pub fn endpoint_mbps(&self, adapter: &WifiAdapter) -> f64 {
        let band_factor = match adapter.band() {
            Band::Ghz2_4 => self.congestion_2_4,
            Band::Ghz5 => self.congestion_5,
        };
        adapter.link_mbps * self.mac_efficiency * band_factor
    }

    /// Transfers `bytes` from a device with adapter `a` to one with `b`,
    /// returning the time taken and achieved goodput.
    pub fn transfer(&mut self, bytes: ByteSize, a: &WifiAdapter, b: &WifiAdapter) -> TransferStats {
        let base = self.endpoint_mbps(a).min(self.endpoint_mbps(b));
        let jitter = self.rng.range_f64(1.0 - self.jitter, 1.0 + self.jitter);
        let goodput_mbps = (base * jitter).max(0.1);
        let secs = bytes.as_u64() as f64 * 8.0 / (goodput_mbps * 1e6);
        let duration = self.setup_latency + SimDuration::from_secs_f64(secs);
        TransferStats {
            bytes,
            duration,
            goodput_mbps,
        }
    }

    /// Transfers `bytes` in per-chunk-acknowledged pieces, consulting
    /// `plan` for link faults along the way.
    ///
    /// Chunks `0..resume_from` are taken as already delivered by an earlier
    /// attempt and are not re-sent; the attempt pays one connection setup
    /// and then ships the remaining chunks in order. A
    /// [`FaultKind::LinkDrop`](flux_simcore::FaultKind) scheduled inside
    /// the attempt window aborts the chunk in flight; everything
    /// acknowledged before it stays delivered. Congestion spikes stretch
    /// the chunks they overlap.
    ///
    /// Draws exactly one jitter sample — the same RNG consumption as
    /// [`NetworkEnv::transfer`] — and, under an empty plan with
    /// `resume_from == 0`, takes exactly the same virtual time, so enabling
    /// chunking without faults changes no results.
    #[allow(clippy::too_many_arguments)]
    pub fn transfer_chunked(
        &mut self,
        now: SimTime,
        bytes: ByteSize,
        chunk_size: ByteSize,
        a: &WifiAdapter,
        b: &WifiAdapter,
        resume_from: usize,
        plan: &FaultPlan,
    ) -> ChunkedTransfer {
        let chunk = chunk_size.as_u64().max(1);
        let total_chunks = bytes.as_u64().div_ceil(chunk) as usize;
        let resume_from = resume_from.min(total_chunks);
        let remaining =
            ByteSize::from_bytes(bytes.as_u64() - (resume_from as u64 * chunk).min(bytes.as_u64()));

        let base = self.endpoint_mbps(a).min(self.endpoint_mbps(b));
        let jitter = self.rng.range_f64(1.0 - self.jitter, 1.0 + self.jitter);
        let goodput_mbps = (base * jitter).max(0.1);
        let secs = remaining.as_u64() as f64 * 8.0 / (goodput_mbps * 1e6);
        let body = SimDuration::from_secs_f64(secs);

        let mut out = ChunkedTransfer {
            total_chunks,
            resumed_chunks: resume_from,
            delivered_chunks: resume_from,
            bytes_delivered: ByteSize::from_bytes(0),
            duration: self.setup_latency + body,
            goodput_mbps,
            congested_chunks: 0,
            outcome: ChunkedOutcome::Complete,
            chunks: Vec::new(),
        };

        // Connection setup; a drop during the handshake delivers nothing.
        let mut cursor = now + self.setup_latency;
        if let Some(e) = plan.link_drop_in(now, cursor) {
            out.duration = e.at - now;
            out.goodput_mbps = 0.0;
            out.outcome = ChunkedOutcome::LinkDropped { at: e.at };
            return out;
        }

        let n = total_chunks - resume_from;
        if n == 0 {
            return out;
        }
        // Integer split of the body time: every chunk gets `per`, the last
        // absorbs the remainder, so the fault-free sum is exactly `body`.
        let per = body.as_nanos() / n as u64;
        let rem = body.as_nanos() - per * n as u64;
        for i in 0..n {
            let base_d = SimDuration::from_nanos(if i == n - 1 { per + rem } else { per });
            let factor = plan.congestion_factor_at(cursor);
            let d = if factor > 1.0 {
                out.congested_chunks += 1;
                SimDuration::from_nanos((base_d.as_nanos() as f64 * factor) as u64)
            } else {
                base_d
            };
            if let Some(e) = plan.link_drop_in(cursor, cursor + d) {
                out.duration = e.at - now;
                out.goodput_mbps = derived_goodput(
                    out.bytes_delivered,
                    out.duration.saturating_sub(self.setup_latency),
                );
                out.outcome = ChunkedOutcome::LinkDropped { at: e.at };
                return out;
            }
            let sent = chunk.min(bytes.as_u64() - (resume_from as u64 + i as u64) * chunk);
            out.chunks.push(ChunkEvent {
                at: cursor,
                duration: d,
                bytes: ByteSize::from_bytes(sent),
                congested: factor > 1.0,
            });
            cursor += d;
            out.delivered_chunks += 1;
            out.bytes_delivered += ByteSize::from_bytes(sent);
        }
        out.duration = cursor - now;
        // Report what actually happened on the air: when congestion
        // stretched chunks the achieved goodput is lower than the jittered
        // nominal rate computed up front. Without faults the air time is
        // exactly `body`, so the nominal rate is kept bit-for-bit (chunking
        // must not change the legacy figures).
        if out.congested_chunks > 0 {
            out.goodput_mbps = derived_goodput(
                out.bytes_delivered,
                out.duration.saturating_sub(self.setup_latency),
            );
        }
        out
    }
}

/// Goodput in Mbit/s achieved by moving `bytes` over `air` time (transfer
/// duration minus connection setup). Zero when nothing moved.
fn derived_goodput(bytes: ByteSize, air: SimDuration) -> f64 {
    if air == SimDuration::ZERO || bytes.as_u64() == 0 {
        return 0.0;
    }
    bytes.as_u64() as f64 * 8.0 / (air.as_secs_f64() * 1e6)
}

/// How a chunked transfer attempt ended.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ChunkedOutcome {
    /// Every remaining chunk was delivered and acknowledged.
    Complete,
    /// The link dropped mid-attempt; chunks acknowledged before `at` are
    /// safe, the rest must be re-sent by a later attempt.
    LinkDropped {
        /// When the link went down.
        at: SimTime,
    },
}

/// One delivered chunk of a chunked transfer, for telemetry.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChunkEvent {
    /// Virtual time the chunk started transmitting.
    pub at: SimTime,
    /// Air time of the chunk (including congestion stretch).
    pub duration: SimDuration,
    /// Payload bytes the chunk carried.
    pub bytes: ByteSize,
    /// Whether a congestion spike stretched this chunk.
    pub congested: bool,
}

/// Statistics of one chunked transfer attempt.
///
/// Two scopes of accounting coexist and are named accordingly:
///
/// * **cumulative** over the whole payload across attempts:
///   [`total_chunks`](Self::total_chunks),
///   [`delivered_chunks`](Self::delivered_chunks),
///   [`resumed_chunks`](Self::resumed_chunks);
/// * **per-attempt** (what *this* call put on the air):
///   [`bytes_delivered`](Self::bytes_delivered),
///   [`attempt_chunks`](Self::attempt_chunks), [`chunks`](Self::chunks),
///   [`duration`](Self::duration), [`goodput_mbps`](Self::goodput_mbps),
///   [`congested_chunks`](Self::congested_chunks).
///
/// Summing the per-attempt figures over the attempts of a resumed transfer
/// therefore reproduces the payload exactly once — nothing is double- or
/// under-reported. The `flux.net.*` counters accumulate the per-attempt
/// fields.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChunkedTransfer {
    /// Chunks in the whole payload (cumulative scope).
    pub total_chunks: usize,
    /// Chunks already delivered by earlier attempts and skipped by this one
    /// (the `resume_from` argument, clamped to the payload).
    pub resumed_chunks: usize,
    /// Cumulative chunks delivered so far, *including* those resumed from
    /// earlier attempts. Pass this as `resume_from` to the next attempt.
    pub delivered_chunks: usize,
    /// Bytes this attempt put on the air (per-attempt scope; excludes
    /// resumed chunks).
    pub bytes_delivered: ByteSize,
    /// Virtual time this attempt consumed (setup + chunks, or time until
    /// the link dropped).
    pub duration: SimDuration,
    /// Goodput this attempt achieved in Mbit/s, derived from
    /// `bytes_delivered` over the air time (`duration` minus connection
    /// setup). Equals the jittered nominal rate when no fault stretched a
    /// chunk; 0.0 when nothing was delivered.
    pub goodput_mbps: f64,
    /// Chunks this attempt sent that congestion spikes slowed.
    pub congested_chunks: usize,
    /// How the attempt ended.
    pub outcome: ChunkedOutcome,
    /// Per-chunk delivery log, in transmission order, for telemetry
    /// (`net.chunk` instant events). Chunks resumed from earlier attempts
    /// and the chunk aborted by a link drop are not included.
    pub chunks: Vec<ChunkEvent>,
}

impl ChunkedTransfer {
    /// Whether every chunk of the payload has now been delivered.
    pub fn complete(&self) -> bool {
        matches!(self.outcome, ChunkedOutcome::Complete)
    }

    /// Chunks this attempt delivered (per-attempt scope): the cumulative
    /// count minus the resumed prefix. Always equals `chunks.len()`.
    pub fn attempt_chunks(&self) -> usize {
        self.delivered_chunks - self.resumed_chunks
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n_dual() -> WifiAdapter {
        WifiAdapter {
            standard: WifiStandard::N,
            dual_band: true,
            link_mbps: 65.0,
        }
    }

    fn n_single() -> WifiAdapter {
        WifiAdapter {
            standard: WifiStandard::N,
            dual_band: false,
            link_mbps: 65.0,
        }
    }

    #[test]
    fn single_band_adapter_is_slower_on_campus() {
        let env = NetworkEnv::campus(1);
        assert!(env.endpoint_mbps(&n_single()) < env.endpoint_mbps(&n_dual()));
    }

    #[test]
    fn transfer_time_scales_with_bytes() {
        let mut env = NetworkEnv::campus(1);
        let t1 = env.transfer(ByteSize::from_mib(1), &n_dual(), &n_dual());
        let t8 = env.transfer(ByteSize::from_mib(8), &n_dual(), &n_dual());
        assert!(t8.duration > t1.duration * 4);
    }

    #[test]
    fn pair_rate_is_min_of_endpoints() {
        let env = NetworkEnv::campus(1);
        let pair = env
            .endpoint_mbps(&n_dual())
            .min(env.endpoint_mbps(&n_single()));
        assert_eq!(pair, env.endpoint_mbps(&n_single()));
    }

    #[test]
    fn calibration_transfer_of_6mib_lands_in_paper_range() {
        // ~6 MB between dual-band devices should take a few seconds on the
        // congested campus network (the paper's migrations average 7.88 s
        // with transfer the majority).
        let mut env = NetworkEnv::campus(7);
        let t = env.transfer(ByteSize::from_mib(6), &n_dual(), &n_dual());
        let secs = t.duration.as_secs_f64();
        assert!((1.0..12.0).contains(&secs), "took {secs}s");
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = NetworkEnv::campus(42);
        let mut b = NetworkEnv::campus(42);
        let ta = a.transfer(ByteSize::from_mib(3), &n_dual(), &n_single());
        let tb = b.transfer(ByteSize::from_mib(3), &n_dual(), &n_single());
        assert_eq!(ta.duration, tb.duration);
    }

    #[test]
    fn chunked_without_faults_matches_legacy_transfer_exactly() {
        let mut legacy = NetworkEnv::campus(42);
        let mut chunked = NetworkEnv::campus(42);
        let bytes = ByteSize::from_mib(6);
        let t = legacy.transfer(bytes, &n_dual(), &n_single());
        let c = chunked.transfer_chunked(
            SimTime::ZERO,
            bytes,
            DEFAULT_CHUNK,
            &n_dual(),
            &n_single(),
            0,
            &FaultPlan::none(),
        );
        assert_eq!(c.duration, t.duration);
        assert_eq!(c.goodput_mbps, t.goodput_mbps);
        assert!(c.complete());
        assert_eq!(c.delivered_chunks, c.total_chunks);
        assert_eq!(c.bytes_delivered, bytes);
        // The chunk log accounts for every byte and the whole body time.
        assert_eq!(c.chunks.len(), c.total_chunks);
        let logged: u64 = c.chunks.iter().map(|e| e.bytes.as_u64()).sum();
        assert_eq!(logged, bytes.as_u64());
        let air: SimDuration = c
            .chunks
            .iter()
            .map(|e| e.duration)
            .fold(SimDuration::ZERO, |acc, d| acc + d);
        assert_eq!(chunked.setup_latency + air, c.duration);
        // Both consumed exactly one jitter draw: the streams stay in step.
        let t2 = legacy.transfer(bytes, &n_dual(), &n_single());
        let c2 = chunked.transfer_chunked(
            SimTime::ZERO,
            bytes,
            DEFAULT_CHUNK,
            &n_dual(),
            &n_single(),
            0,
            &FaultPlan::none(),
        );
        assert_eq!(c2.duration, t2.duration);
    }

    #[test]
    fn resume_skips_delivered_chunks() {
        let mut env = NetworkEnv::campus(5);
        let bytes = ByteSize::from_mib(4);
        let full = env.transfer_chunked(
            SimTime::ZERO,
            bytes,
            DEFAULT_CHUNK,
            &n_dual(),
            &n_dual(),
            0,
            &FaultPlan::none(),
        );
        let mut env2 = NetworkEnv::campus(5);
        let resumed = env2.transfer_chunked(
            SimTime::ZERO,
            bytes,
            DEFAULT_CHUNK,
            &n_dual(),
            &n_dual(),
            full.total_chunks / 2,
            &FaultPlan::none(),
        );
        assert!(resumed.complete());
        assert!(resumed.duration < full.duration);
        assert!(resumed.bytes_delivered.as_u64() < bytes.as_u64());
        assert_eq!(resumed.delivered_chunks, full.total_chunks);
    }

    #[test]
    fn link_drop_aborts_with_partial_delivery() {
        use flux_simcore::{FaultEvent, FaultKind};
        let mut env = NetworkEnv::campus(9);
        let bytes = ByteSize::from_mib(8);
        // Find out how long the fault-free transfer takes, then schedule a
        // drop in the middle of it.
        let probe = NetworkEnv::campus(9).transfer(bytes, &n_dual(), &n_dual());
        let drop_at = SimTime::ZERO + SimDuration::from_nanos(probe.duration.as_nanos() / 2);
        let plan = FaultPlan::from_events(vec![FaultEvent {
            at: drop_at,
            kind: FaultKind::LinkDrop,
            duration: SimDuration::ZERO,
            magnitude: 0.0,
        }]);
        let c = env.transfer_chunked(
            SimTime::ZERO,
            bytes,
            DEFAULT_CHUNK,
            &n_dual(),
            &n_dual(),
            0,
            &plan,
        );
        assert!(!c.complete());
        assert!(c.delivered_chunks > 0 && c.delivered_chunks < c.total_chunks);
        assert!(c.duration <= probe.duration);
        // A resumed attempt after the drop finishes the payload.
        let c2 = env.transfer_chunked(
            drop_at + SimDuration::from_secs(1),
            bytes,
            DEFAULT_CHUNK,
            &n_dual(),
            &n_dual(),
            c.delivered_chunks,
            &plan,
        );
        assert!(c2.complete());
        assert_eq!(c2.delivered_chunks, c.total_chunks);
    }

    #[test]
    fn congestion_spike_stretches_the_transfer() {
        use flux_simcore::{FaultEvent, FaultKind};
        let bytes = ByteSize::from_mib(6);
        let clean = NetworkEnv::campus(11).transfer_chunked(
            SimTime::ZERO,
            bytes,
            DEFAULT_CHUNK,
            &n_dual(),
            &n_dual(),
            0,
            &FaultPlan::none(),
        );
        let plan = FaultPlan::from_events(vec![FaultEvent {
            at: SimTime::ZERO,
            kind: FaultKind::CongestionSpike,
            duration: clean.duration * 4,
            magnitude: 3.0,
        }]);
        let slow = NetworkEnv::campus(11).transfer_chunked(
            SimTime::ZERO,
            bytes,
            DEFAULT_CHUNK,
            &n_dual(),
            &n_dual(),
            0,
            &plan,
        );
        assert!(slow.complete());
        assert!(slow.congested_chunks > 0);
        assert!(slow.duration.as_secs_f64() > clean.duration.as_secs_f64() * 2.0);
    }

    #[test]
    fn congested_transfer_reports_achieved_goodput() {
        use flux_simcore::{FaultEvent, FaultKind};
        let bytes = ByteSize::from_mib(6);
        let clean = NetworkEnv::campus(11).transfer_chunked(
            SimTime::ZERO,
            bytes,
            DEFAULT_CHUNK,
            &n_dual(),
            &n_dual(),
            0,
            &FaultPlan::none(),
        );
        let plan = FaultPlan::from_events(vec![FaultEvent {
            at: SimTime::ZERO,
            kind: FaultKind::CongestionSpike,
            duration: clean.duration * 4,
            magnitude: 3.0,
        }]);
        let mut env = NetworkEnv::campus(11);
        let slow = env.transfer_chunked(
            SimTime::ZERO,
            bytes,
            DEFAULT_CHUNK,
            &n_dual(),
            &n_dual(),
            0,
            &plan,
        );
        assert!(slow.congested_chunks > 0);
        // The reported goodput is what the air actually achieved, not the
        // pre-congestion nominal rate: bytes over the (stretched) air time.
        let air = slow.duration.saturating_sub(env.setup_latency);
        let derived = bytes.as_u64() as f64 * 8.0 / (air.as_secs_f64() * 1e6);
        assert!(
            (slow.goodput_mbps - derived).abs() < 1e-6,
            "reported {} but achieved {derived}",
            slow.goodput_mbps
        );
        // A 3x stretch must show up: well below the clean rate.
        assert!(
            slow.goodput_mbps < clean.goodput_mbps / 2.0,
            "congested goodput {} not below clean {}",
            slow.goodput_mbps,
            clean.goodput_mbps
        );
    }

    #[test]
    fn dropped_transfer_reports_partial_goodput() {
        use flux_simcore::{FaultEvent, FaultKind};
        let mut env = NetworkEnv::campus(9);
        let bytes = ByteSize::from_mib(8);
        let probe = NetworkEnv::campus(9).transfer(bytes, &n_dual(), &n_dual());
        let drop_at = SimTime::ZERO + SimDuration::from_nanos(probe.duration.as_nanos() / 2);
        let plan = FaultPlan::from_events(vec![FaultEvent {
            at: drop_at,
            kind: FaultKind::LinkDrop,
            duration: SimDuration::ZERO,
            magnitude: 0.0,
        }]);
        let c = env.transfer_chunked(
            SimTime::ZERO,
            bytes,
            DEFAULT_CHUNK,
            &n_dual(),
            &n_dual(),
            0,
            &plan,
        );
        assert!(!c.complete());
        let air = c.duration.saturating_sub(env.setup_latency);
        let derived = c.bytes_delivered.as_u64() as f64 * 8.0 / (air.as_secs_f64() * 1e6);
        assert!(
            (c.goodput_mbps - derived).abs() < 1e-6,
            "reported {} but achieved {derived}",
            c.goodput_mbps
        );
        // A drop during the handshake achieves nothing.
        let plan = FaultPlan::from_events(vec![FaultEvent {
            at: SimTime::ZERO + SimDuration::from_millis(1),
            kind: FaultKind::LinkDrop,
            duration: SimDuration::ZERO,
            magnitude: 0.0,
        }]);
        let h = NetworkEnv::campus(9).transfer_chunked(
            SimTime::ZERO,
            bytes,
            DEFAULT_CHUNK,
            &n_dual(),
            &n_dual(),
            0,
            &plan,
        );
        assert_eq!(h.bytes_delivered, ByteSize::from_bytes(0));
        assert_eq!(h.goodput_mbps, 0.0);
    }

    #[test]
    fn resume_accounting_scopes_are_consistent() {
        use flux_simcore::{FaultEvent, FaultKind};
        let mut env = NetworkEnv::campus(9);
        let bytes = ByteSize::from_mib(8) + ByteSize::from_kib(37); // last chunk partial
        let probe = NetworkEnv::campus(9).transfer(bytes, &n_dual(), &n_dual());
        let drop_at = SimTime::ZERO + SimDuration::from_nanos(probe.duration.as_nanos() / 3);
        let plan = FaultPlan::from_events(vec![FaultEvent {
            at: drop_at,
            kind: FaultKind::LinkDrop,
            duration: SimDuration::ZERO,
            magnitude: 0.0,
        }]);
        let first = env.transfer_chunked(
            SimTime::ZERO,
            bytes,
            DEFAULT_CHUNK,
            &n_dual(),
            &n_dual(),
            0,
            &plan,
        );
        assert!(!first.complete());
        assert_eq!(first.resumed_chunks, 0);
        assert_eq!(first.attempt_chunks(), first.chunks.len());
        let second = env.transfer_chunked(
            drop_at + SimDuration::from_secs(1),
            bytes,
            DEFAULT_CHUNK,
            &n_dual(),
            &n_dual(),
            first.delivered_chunks,
            &plan,
        );
        assert!(second.complete());
        // Cumulative scope: resumed prefix + this attempt = whole payload.
        assert_eq!(second.resumed_chunks, first.delivered_chunks);
        assert_eq!(second.delivered_chunks, second.total_chunks);
        assert_eq!(second.attempt_chunks(), second.chunks.len());
        // Per-attempt scope: the attempts partition the payload exactly.
        assert_eq!(
            first.attempt_chunks() + second.attempt_chunks(),
            second.total_chunks
        );
        assert_eq!(
            (first.bytes_delivered + second.bytes_delivered).as_u64(),
            bytes.as_u64()
        );
    }

    #[test]
    fn quiet_network_is_faster_than_campus() {
        let mut campus = NetworkEnv::campus(3);
        let mut quiet = NetworkEnv::quiet(3);
        let tc = campus.transfer(ByteSize::from_mib(10), &n_single(), &n_single());
        let tq = quiet.transfer(ByteSize::from_mib(10), &n_single(), &n_single());
        assert!(tq.duration < tc.duration);
    }
}
