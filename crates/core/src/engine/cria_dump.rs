//! The CRIA dump phase — the stage named **checkpoint**: CRIU dump +
//! compression on the home device, packaged with the cloned record log
//! and re-initialisation metadata into a [`FluxImage`].
//!
//! With pre-copy coverage the frozen dump writes only the pages dirtied
//! since the last streamed pre-dump; under the pipeline the compression
//! cost is deferred into the transfer stage's fused window. Kernel stalls
//! inside the dump window can trip the watchdog and fault the stage.

use super::failure::StageFailure;
use super::{Stage, StageCtx, StageOutcome};
use crate::cria::{FluxImage, ReinitSpec, IMAGE_COMPRESS_RATIO};
use crate::image_cache;
use crate::migration::{MigrationStage, StageTimes};
use crate::record::CallLog;
use flux_kernel::criu;
use flux_simcore::{ByteSize, SimDuration};
use flux_telemetry::LaneId;

/// The checkpoint stage (CRIU dump + compression, home device).
pub struct CriaDump;

impl Stage for CriaDump {
    fn name(&self) -> &'static str {
        "checkpoint"
    }

    fn lane(&self, cx: &StageCtx<'_>) -> LaneId {
        cx.mig.home_lane
    }

    fn pending(&self, cx: &StageCtx<'_>) -> bool {
        cx.prog.image.is_none()
    }

    fn anchor(&self) -> Option<MigrationStage> {
        Some(MigrationStage::Checkpoint)
    }

    fn times_slot<'t>(&self, times: &'t mut StageTimes) -> Option<&'t mut SimDuration> {
        Some(&mut times.checkpoint)
    }

    fn run(&self, cx: &mut StageCtx<'_>) -> Result<StageOutcome, StageFailure> {
        let package = cx.mig.package.as_str();
        let image = {
            let now = cx.world.clock.now();
            let dev = cx.world.device_mut(cx.mig.home)?;
            let app = dev
                .apps
                .get(package)
                .ok_or_else(|| StageFailure::NoSuchApp(package.to_owned()))?;
            let uid = app.uid;
            let main_pid = app.main_pid;
            let process = criu::checkpoint(&dev.kernel, main_pid, now)
                .map_err(|e| StageFailure::Internal(e.to_string()))?;
            // The log is *cloned* here and only removed from the home
            // device at finalise, so rollback leaves it untouched.
            let log: CallLog = dev.records.log(uid).cloned().unwrap_or_default();
            FluxImage {
                package: package.to_owned(),
                home_device: cx.mig.home_name.clone(),
                home_profile: cx.mig.home_profile.clone(),
                reinit: ReinitSpec {
                    textures: ByteSize::from_mib_f64(cx.mig.spec.textures_mib),
                    gl_contexts: cx.mig.spec.gl_contexts,
                    views: cx.mig.spec.views,
                    heap: ByteSize::from_mib_f64(cx.mig.spec.heap_mib),
                },
                process,
                log,
            }
        };
        let raw = image.raw_bytes();
        let objects = image.process.object_count();
        // With pre-copy coverage the frozen dump writes only the pages
        // dirtied since the last streamed pre-dump (plus metadata), and
        // only that residue is compressed and shipped.
        let ship_raw = match &cx.prog.precopy_base {
            Some(base) => image.process.dirty_delta(base).total_bytes(),
            None => raw,
        };
        let dump_cost = cx.mig.home_cost.checkpoint_time(ship_raw, objects);
        let compress_cost = cx.mig.home_cost.compress_time(ship_raw);
        // The pipeline defers compression into the transfer stage's fused
        // window, where it overlaps the radio on a separate lane.
        let (cost, deferred) = if cx.mig.cfg.pipeline {
            (dump_cost, compress_cost)
        } else {
            (dump_cost + compress_cost, SimDuration::ZERO)
        };
        let charge_start = cx.world.clock.now();
        let fail = cx.charge_with_stalls(cost, MigrationStage::Checkpoint, cx.mig.home_lane);
        // Attribute the lump charge window to per-driver sub-spans,
        // whether or not a stall aborted the stage afterwards.
        cx.record_criu_parts(
            cx.mig.home_lane,
            "criu.dump",
            charge_start,
            dump_cost,
            &image.process.component_weights(),
        );
        if !cx.mig.cfg.pipeline {
            cx.world.telemetry.record_complete(
                cx.mig.home_lane,
                "criu.compress",
                charge_start + dump_cost,
                charge_start + cost,
            );
        }
        if let Some(fail) = fail {
            return Err(fail);
        }
        if let Some(base) = &cx.prog.precopy_base {
            cx.prog.image_to_ship = Some(
                image
                    .process
                    .dirty_delta(base)
                    .total_bytes()
                    .scale(IMAGE_COMPRESS_RATIO)
                    + image.compressed_log_bytes(),
            );
        } else if cx.mig.cfg.image_cache && !cx.prog.cache_checked {
            // No pre-copy ran, so the cache is consulted here, over the
            // full frozen image.
            let p = {
                let dev = cx.world.device(cx.mig.guest)?;
                image_cache::partition(&dev.fs, &cx.mig.pairing_root, package, &image.process)
            };
            cx.record_cache_counters(&p);
            cx.prog.cache_hit = p.hit_bytes;
            cx.prog.cache_checked = true;
            cx.prog.image_to_ship = Some(image.compressed_bytes() - p.hit_bytes);
            cx.prog.cache_missed = p.missed;
        }
        cx.prog.compress_pending = deferred;
        cx.prog.image = Some(image);
        Ok(StageOutcome::Completed)
    }
}
