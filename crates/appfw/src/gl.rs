//! The OpenGL ES stack of an app process.
//!
//! "Communication with devices takes place via system-provided Binder
//! services ... An exception is the GPU, which is interacted with directly
//! using the standardized OpenGL ES library" (§2). OpenGL consists of a
//! generic library plus a *vendor-specific* library tied to the device's
//! GPU; Flux extends the stack with `eglUnload` so the vendor library can
//! be completely unloaded before checkpoint and a different vendor's
//! library loaded after restore (§3.3).

use flux_kernel::{Process, Prot, VmaKind};
use flux_simcore::ByteSize;
use serde::{Deserialize, Serialize};

/// One EGL context with its GPU-resident state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EglContext {
    /// Context id.
    pub id: u32,
    /// GPU memory held for textures.
    pub texture_bytes: ByteSize,
    /// Compiled shader programs.
    pub shader_count: u32,
    /// Whether the app called `setPreserveEGLContextOnPause` — the
    /// unsupported case that blocks migration (§3.4).
    pub preserve_on_pause: bool,
    /// VMA id of the GPU mapping backing this context, if mapped.
    pub gpu_vma: Option<u64>,
    /// pmem allocation backing the context's command buffers.
    pub pmem_alloc: Option<u64>,
}

/// The app-side hardware renderer plus loaded GL libraries.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct GlState {
    /// Whether the generic `libEGL`/`libGLESv2` pair is loaded.
    pub generic_loaded: bool,
    /// Name of the loaded vendor library (e.g. `libGLES_adreno.so`).
    pub vendor_lib: Option<String>,
    /// VMA id of the vendor library mapping.
    pub vendor_vma: Option<u64>,
    /// Live contexts.
    pub contexts: Vec<EglContext>,
    /// HardwareRenderer cache bytes (flushed by `startTrimMemory`).
    pub cache_bytes: ByteSize,
    /// VMA id backing the renderer cache, if mapped.
    pub cache_vma: Option<u64>,
    next_ctx: u32,
}

impl GlState {
    /// Initialises the GL stack: loads the generic and vendor libraries
    /// into the process and creates the renderer cache.
    pub fn initialize(&mut self, proc: &mut Process, vendor_lib: &str, cache: ByteSize) {
        if !self.generic_loaded {
            proc.mem.map(
                VmaKind::SharedLib {
                    path: "/system/lib/libEGL.so".into(),
                    vendor_specific: false,
                },
                ByteSize::from_kib(260),
                Prot::RX,
                0.0,
            );
            proc.mem.map(
                VmaKind::SharedLib {
                    path: "/system/lib/libGLESv2.so".into(),
                    vendor_specific: false,
                },
                ByteSize::from_kib(220),
                Prot::RX,
                0.0,
            );
            self.generic_loaded = true;
        }
        if self.vendor_lib.is_none() {
            let vma = proc.mem.map(
                VmaKind::SharedLib {
                    path: format!("/system/vendor/lib/egl/{vendor_lib}"),
                    vendor_specific: true,
                },
                ByteSize::from_mib(6),
                Prot::RX,
                0.0,
            );
            self.vendor_lib = Some(vendor_lib.to_owned());
            self.vendor_vma = Some(vma);
        }
        if self.cache_vma.is_none() && !cache.is_zero() {
            let vma = proc.mem.map(
                VmaKind::Gpu {
                    resource: "renderer-cache".into(),
                },
                cache,
                Prot::RW,
                1.0,
            );
            self.cache_bytes = cache;
            self.cache_vma = Some(vma);
        }
    }

    /// Creates a context holding `textures` of GPU memory, backed by a GPU
    /// mapping in the process and a pmem allocation.
    pub fn create_context(
        &mut self,
        proc: &mut Process,
        pmem: &mut flux_kernel::Pmem,
        textures: ByteSize,
        shaders: u32,
    ) -> u32 {
        self.next_ctx += 1;
        let id = self.next_ctx;
        let gpu_vma = proc.mem.map(
            VmaKind::Gpu {
                resource: format!("egl-context#{id}"),
            },
            textures,
            Prot::RW,
            1.0,
        );
        let alloc = pmem.alloc(proc.real_pid, "gpu", textures.scale(0.25));
        self.contexts.push(EglContext {
            id,
            texture_bytes: textures,
            shader_count: shaders,
            preserve_on_pause: false,
            gpu_vma: Some(gpu_vma),
            pmem_alloc: Some(alloc),
        });
        id
    }

    /// Marks a context preserve-on-pause (`setPreserveEGLContextOnPause`).
    pub fn set_preserve_on_pause(&mut self, ctx_id: u32, preserve: bool) -> bool {
        match self.contexts.iter_mut().find(|c| c.id == ctx_id) {
            Some(c) => {
                c.preserve_on_pause = preserve;
                true
            }
            None => false,
        }
    }

    /// Whether any context insists on persisting while backgrounded.
    pub fn any_preserved(&self) -> bool {
        self.contexts.iter().any(|c| c.preserve_on_pause)
    }

    /// Flushes the HardwareRenderer caches (`startTrimMemory`).
    pub fn flush_caches(&mut self, proc: &mut Process) -> ByteSize {
        let flushed = self.cache_bytes;
        if let Some(vma) = self.cache_vma.take() {
            proc.mem.unmap(vma);
        }
        self.cache_bytes = ByteSize::ZERO;
        flushed
    }

    /// Destroys every non-preserved context, unmapping its GPU memory and
    /// freeing its pmem. Returns how many contexts went away.
    pub fn destroy_contexts(&mut self, proc: &mut Process, pmem: &mut flux_kernel::Pmem) -> usize {
        let mut destroyed = 0;
        self.contexts.retain(|c| {
            if c.preserve_on_pause {
                return true;
            }
            if let Some(vma) = c.gpu_vma {
                proc.mem.unmap(vma);
            }
            if let Some(alloc) = c.pmem_alloc {
                pmem.free(alloc);
            }
            destroyed += 1;
            false
        });
        destroyed
    }

    /// Flux's `eglUnload` extension: unloads the vendor library once every
    /// context is gone, so a different vendor stack can be loaded on the
    /// guest. Fails while contexts remain (the trim cascade must run first).
    pub fn egl_unload(&mut self, proc: &mut Process) -> Result<(), String> {
        if !self.contexts.is_empty() {
            return Err(format!(
                "{} EGL context(s) still alive; trim memory first",
                self.contexts.len()
            ));
        }
        if let Some(vma) = self.vendor_vma.take() {
            proc.mem.unmap(vma);
        }
        self.vendor_lib = None;
        Ok(())
    }

    /// Total GPU bytes currently held (contexts + caches).
    pub fn gpu_bytes(&self) -> ByteSize {
        self.contexts
            .iter()
            .map(|c| c.texture_bytes)
            .sum::<ByteSize>()
            + self.cache_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flux_kernel::{Kernel, Pmem};
    use flux_simcore::Uid;

    fn setup() -> (Kernel, flux_simcore::Pid) {
        let mut k = Kernel::new("3.4");
        let pid = k.spawn(Uid(10_001), "com.example.game");
        (k, pid)
    }

    #[test]
    fn initialize_loads_generic_and_vendor_libs() {
        let (mut k, pid) = setup();
        let mut gl = GlState::default();
        let proc = k.process_mut(pid).unwrap();
        gl.initialize(proc, "libGLES_adreno.so", ByteSize::from_mib(4));
        assert!(gl.generic_loaded);
        assert_eq!(gl.vendor_lib.as_deref(), Some("libGLES_adreno.so"));
        assert!(proc.mem.has_device_specific());
        // Idempotent.
        gl.initialize(proc, "libGLES_adreno.so", ByteSize::from_mib(4));
        assert_eq!(gl.contexts.len(), 0);
    }

    #[test]
    fn context_lifecycle_allocates_and_frees_gpu_state() {
        let (mut k, pid) = setup();
        let mut gl = GlState::default();
        {
            let proc = k.process_mut(pid).unwrap();
            gl.initialize(proc, "libGLES_tegra.so", ByteSize::from_mib(2));
        }
        let mut pmem = std::mem::take(&mut k.pmem);
        let proc = k.process_mut(pid).unwrap();
        gl.create_context(proc, &mut pmem, ByteSize::from_mib(16), 12);
        assert_eq!(gl.gpu_bytes(), ByteSize::from_mib(18));
        assert_eq!(pmem.owned_by(pid).len(), 1);

        gl.flush_caches(proc);
        assert_eq!(gl.destroy_contexts(proc, &mut pmem), 1);
        assert!(pmem.owned_by(pid).is_empty());
        gl.egl_unload(proc).unwrap();
        assert!(!proc.mem.has_device_specific());
    }

    #[test]
    fn egl_unload_refuses_while_contexts_live() {
        let (mut k, pid) = setup();
        let mut gl = GlState::default();
        let mut pmem = Pmem::default();
        let proc = k.process_mut(pid).unwrap();
        gl.initialize(proc, "libGLES_adreno.so", ByteSize::ZERO);
        gl.create_context(proc, &mut pmem, ByteSize::from_mib(8), 4);
        assert!(gl.egl_unload(proc).is_err());
    }

    #[test]
    fn preserved_contexts_survive_trim() {
        let (mut k, pid) = setup();
        let mut gl = GlState::default();
        let mut pmem = Pmem::default();
        let proc = k.process_mut(pid).unwrap();
        gl.initialize(proc, "libGLES_adreno.so", ByteSize::ZERO);
        let ctx = gl.create_context(proc, &mut pmem, ByteSize::from_mib(8), 4);
        assert!(gl.set_preserve_on_pause(ctx, true));
        assert!(gl.any_preserved());
        assert_eq!(gl.destroy_contexts(proc, &mut pmem), 0);
        assert_eq!(gl.contexts.len(), 1);
        // This is exactly why Subway Surfers cannot migrate.
        assert!(gl.egl_unload(proc).is_err());
    }
}
