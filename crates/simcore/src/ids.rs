//! Simulation-wide operating-system identifiers.
//!
//! PIDs and UIDs are shared vocabulary between the Binder driver, the kernel
//! process model and the system services, so they live here at the bottom of
//! the crate graph.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A process identifier.
///
/// Inside a restored app these stay stable across migration because CRIA
/// launches the wrapper app in a private PID namespace (§3.1 of the paper).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct Pid(pub u32);

impl fmt::Display for Pid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pid:{}", self.0)
    }
}

/// A user identifier. Android assigns one UID per installed app.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct Uid(pub u32);

impl Uid {
    /// The system UID used by Android system services.
    pub const SYSTEM: Uid = Uid(1000);

    /// The first UID handed to installed apps (`AID_APP` in Android).
    pub const FIRST_APP: Uid = Uid(10_000);

    /// Whether this UID belongs to an installed app rather than the system.
    pub fn is_app(self) -> bool {
        self.0 >= Self::FIRST_APP.0
    }
}

impl fmt::Display for Uid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "uid:{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn app_uid_threshold_matches_android() {
        assert!(!Uid::SYSTEM.is_app());
        assert!(Uid::FIRST_APP.is_app());
        assert!(Uid(10_123).is_app());
    }

    #[test]
    fn ids_display_with_prefix() {
        assert_eq!(Pid(42).to_string(), "pid:42");
        assert_eq!(Uid(1000).to_string(), "uid:1000");
    }
}
