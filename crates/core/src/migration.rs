//! Migration vocabulary: configuration, stage identity, retry policy and
//! the time/byte accounting types (§3.1, Figures 3–4, 12–15).
//!
//! A migration runs **preparation → checkpoint → transfer → restore →
//! reintegration**, the exact stage split of Figure 13, with an optional
//! pre-copy stage 0 in front. The pipeline itself — one module per phase,
//! one driver owning retry, rollback and telemetry — lives in
//! [`crate::engine`]; this module keeps the types those stages speak and
//! the figure-facing accounting structs, plus compatibility re-exports so
//! `flux_core::migration::migrate` keeps working.
//!
//! Unsupported cases are detected up front and refused with a
//! [`crate::engine::StageFailure`], matching §3.3–3.4: multi-process apps, preserved EGL
//! contexts, in-flight ContentProvider interactions, open common SD-card
//! files, incompatible API levels and non-system Binder connections.
//!
//! When the world carries a non-empty [`flux_simcore::FaultPlan`], stages
//! can *fail* rather than merely cost time: link drops abort the chunked
//! image transfer mid-way, and kernel stalls past [`KERNEL_STALL_WATCHDOG`]
//! abort a checkpoint or restore. Failed stages are retried under a
//! [`RetryPolicy`] with exponential backoff charged to virtual time,
//! resuming from delivered state — chunks acknowledged by the guest are
//! never re-sent. If the retry budget runs out (or an unrecoverable error
//! occurs mid-flight), the migration **rolls back**: partial guest state —
//! the wrapper process, staged image chunks, injected Binder references —
//! is torn down, and the home-side app returns to the foreground, verified
//! by invariant checks. A migration therefore either fully completes or
//! leaves the world as if it had never started (plus the time it wasted).

use crate::replay::ReplayStats;
use crate::world::DeviceId;
use flux_appfw::LifecycleEvent;
use flux_simcore::{ByteSize, FaultPlan, SimDuration, SimTime};
use std::fmt;

pub use crate::engine::{broadcast_connectivity, migrate, run};

/// A kernel stall at least this long trips the checkpoint/restore watchdog
/// and aborts the stage (shorter stalls only add latency).
pub const KERNEL_STALL_WATCHDOG: SimDuration = SimDuration::from_millis(800);

/// Maximum pre-copy rounds before the app is frozen regardless of residue.
pub const PRECOPY_MAX_ROUNDS: u32 = 3;

/// Fraction of a foreground app's dump-needing pages dirtied per second
/// while a pre-copy round streams (the writable working set keeps moving
/// under the app, which is what bounds pre-copy convergence).
pub const PRECOPY_DIRTY_FRACTION_PER_SEC: f64 = 0.02;

/// Pre-copy stops early once the residual (un-streamed) payload falls to
/// this size: freezing then ships less than two radio chunks.
pub const PRECOPY_STOP: ByteSize = ByteSize::from_kib(512);

/// Which of the pipelined-migration features a run enables.
///
/// The default is the serial engine — no pre-copy, no stage overlap, no
/// image cache — which is bit-for-bit the behaviour the seed-recorded
/// figures were captured under. Every feature is opt-in so enabling
/// nothing changes nothing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MigrationConfig {
    /// Retry policy for faulted stages.
    pub retry: RetryPolicy,
    /// Run the iterative CRIA pre-dump loop, streaming cold pages while
    /// the app is still foreground and shipping only the dirtied residue
    /// after the freeze.
    pub precopy: bool,
    /// Overlap checkpoint compression with the chunked radio transfer on
    /// separate virtual-time lanes instead of charging them serially.
    pub pipeline: bool,
    /// Consult (and populate) the guest's content-addressed image cache so
    /// repeat migrations ship only chunks not already present.
    pub image_cache: bool,
}

impl MigrationConfig {
    /// The full pipelined engine: pre-copy + stage overlap + image cache.
    pub fn pipelined() -> Self {
        Self {
            precopy: true,
            pipeline: true,
            image_cache: true,
            ..Self::default()
        }
    }
}

/// The five report stages, for failure reporting and per-stage accounting.
///
/// Each value's [`name`](Self::name) equals the corresponding engine
/// stage's [`Stage::name`](crate::engine::Stage::name), which is what span
/// and metric names derive from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum MigrationStage {
    /// Backgrounding + trim-memory + `eglUnload` on the home device.
    Preparation,
    /// CRIU dump + compression on the home device.
    Checkpoint,
    /// Verification sync + chunked radio transfer.
    Transfer,
    /// Decompression + CRIU restore on the guest device.
    Restore,
    /// Adaptive Replay + connectivity + re-layout on the guest device.
    Reintegration,
}

impl MigrationStage {
    /// All five report stages, pipeline order.
    pub const ALL: [MigrationStage; 5] = [
        MigrationStage::Preparation,
        MigrationStage::Checkpoint,
        MigrationStage::Transfer,
        MigrationStage::Restore,
        MigrationStage::Reintegration,
    ];

    /// The wire name: what spans, metrics and fault details call the stage.
    pub fn name(self) -> &'static str {
        match self {
            MigrationStage::Preparation => "preparation",
            MigrationStage::Checkpoint => "checkpoint",
            MigrationStage::Transfer => "transfer",
            MigrationStage::Restore => "restore",
            MigrationStage::Reintegration => "reintegration",
        }
    }
}

impl fmt::Display for MigrationStage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A lifecycle event scheduled against a stage of an in-flight migration:
/// deliver `event` to the home-side app `offset` after `stage` begins.
///
/// This is the mid-stage half of the Riganelli-style lifecycle races. The
/// engine arms each interrupt on its interrupt timeline when the anchor
/// stage first runs and delivers it at the next slice boundary the clock
/// crosses — inside the stage, not between stages. Offsets past the
/// anchor stage's end are still delivered (at a later stage's boundary);
/// offsets past the whole migration are dropped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StageInterrupt {
    /// The report stage the offset is anchored to.
    pub stage: MigrationStage,
    /// Delay from the anchor stage's first entry.
    pub offset: SimDuration,
    /// The lifecycle event to deliver.
    pub event: LifecycleEvent,
}

impl StageInterrupt {
    /// An interrupt delivering `event` at `offset` into `stage`.
    pub fn at(stage: MigrationStage, offset: SimDuration, event: LifecycleEvent) -> Self {
        Self {
            stage,
            offset,
            event,
        }
    }
}

/// One interrupt the engine actually delivered during a migration,
/// recorded on [`MigrationReport::interrupts`] so the oracle can tell a
/// legitimate mid-flight reset from silent state loss.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InterruptRecord {
    /// The stage the interrupt was anchored to.
    pub stage: MigrationStage,
    /// Virtual time of delivery.
    pub at: SimTime,
    /// The delivered event.
    pub event: LifecycleEvent,
}

/// Everything one migration needs, built fluently and handed to
/// [`migrate`]: the package, the device route, the engine configuration
/// and an optional fault schedule.
///
/// The spec replaces the old positional entry-point trio — one function,
/// one growable argument, instead of a new function per knob:
///
/// ```no_run
/// # use flux_core::{migrate, MigrationSpec, RetryPolicy};
/// # use flux_core::world::{DeviceId, FluxWorld};
/// # fn demo(world: &mut FluxWorld, phone: DeviceId, tablet: DeviceId) {
/// let report = migrate(
///     world,
///     MigrationSpec::new("com.whatsapp")
///         .between(phone, tablet)
///         .retry(RetryPolicy::default()),
/// );
/// # let _ = report;
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct MigrationSpec {
    /// Package to migrate.
    pub package: String,
    /// `(home, guest)` device route; [`migrate`] refuses a spec without
    /// one.
    pub route: Option<(DeviceId, DeviceId)>,
    /// Engine configuration (retry policy, pre-copy, pipelining, cache).
    pub cfg: MigrationConfig,
    /// Fault schedule relative to the migration's start; `None` inherits
    /// the world's ambient [`FaultPlan`].
    pub faults: Option<FaultPlan>,
    /// Lifecycle events to deliver mid-stage, anchored to report stages.
    pub interrupts: Vec<StageInterrupt>,
}

impl MigrationSpec {
    /// A spec for `package` with the default engine configuration. Set the
    /// route with [`MigrationSpec::between`] before calling [`migrate`].
    pub fn new(package: &str) -> Self {
        Self {
            package: package.to_owned(),
            route: None,
            cfg: MigrationConfig::default(),
            faults: None,
            interrupts: Vec::new(),
        }
    }

    /// Sets the device route: migrate from `home` to `guest`.
    pub fn between(mut self, home: DeviceId, guest: DeviceId) -> Self {
        self.route = Some((home, guest));
        self
    }

    /// Replaces the whole engine configuration.
    pub fn config(mut self, cfg: MigrationConfig) -> Self {
        self.cfg = cfg;
        self
    }

    /// Sets just the retry policy, keeping the rest of the configuration.
    pub fn retry(mut self, policy: RetryPolicy) -> Self {
        self.cfg.retry = policy;
        self
    }

    /// Sets a fault schedule, expressed relative to the migration's own
    /// start; [`migrate`] shifts it onto the world clock and restores the
    /// ambient plan afterwards.
    pub fn faults(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    /// Schedules a lifecycle event `offset` into `stage`, delivered at the
    /// next slice boundary inside the running migration.
    pub fn interrupt(
        mut self,
        stage: MigrationStage,
        offset: SimDuration,
        event: LifecycleEvent,
    ) -> Self {
        self.interrupts
            .push(StageInterrupt::at(stage, offset, event));
        self
    }

    /// Replaces the whole mid-stage interrupt schedule.
    pub fn interrupts(mut self, interrupts: Vec<StageInterrupt>) -> Self {
        self.interrupts = interrupts;
        self
    }
}

/// How often and how patiently failed stages are retried.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts (first try included). 1 means fail fast.
    pub max_attempts: u32,
    /// Backoff before the first retry; doubles per further retry.
    pub backoff_base: SimDuration,
    /// Upper bound on a single backoff.
    pub backoff_cap: SimDuration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_attempts: 4,
            backoff_base: SimDuration::from_millis(200),
            backoff_cap: SimDuration::from_secs(5),
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries: the first fault aborts the migration.
    pub fn none() -> Self {
        Self {
            max_attempts: 1,
            ..Self::default()
        }
    }

    /// Exponential backoff charged after the `failed_attempts`-th failure
    /// (1-based): `base * 2^(failed_attempts - 1)`, capped.
    pub fn backoff_after(&self, failed_attempts: u32) -> SimDuration {
        let exp = failed_attempts.saturating_sub(1).min(20);
        let ns = self.backoff_base.as_nanos().saturating_mul(1u64 << exp);
        SimDuration::from_nanos(ns.min(self.backoff_cap.as_nanos()))
    }
}

/// Virtual time spent per stage (Figure 13's categories).
///
/// The per-stage fields are **busy** time: what each stage charged,
/// summed across attempts. Under the serial engine busy and wall
/// coincide. Under [`MigrationConfig::pipeline`] stages overlap on
/// separate lanes, and [`overlap_saved`](Self::overlap_saved) records the
/// latency the overlap hid, so [`wall_total`](Self::wall_total) and
/// [`user_perceived`](Self::user_perceived) reflect what a clock on the
/// wall (and the user) actually saw.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageTimes {
    /// Pre-copy rounds: iterative pre-dumps streamed while the app was
    /// still foreground. Zero under the serial engine.
    pub precopy: SimDuration,
    /// Backgrounding + trim-memory + `eglUnload`.
    pub preparation: SimDuration,
    /// CRIU dump + compression.
    pub checkpoint: SimDuration,
    /// APK/data verification sync + radio transfer.
    pub transfer: SimDuration,
    /// Decompression + CRIU restore + Binder re-injection.
    pub restore: SimDuration,
    /// Adaptive Replay + connectivity events + re-layout + foreground.
    pub reintegration: SimDuration,
    /// Busy time hidden by pipeline overlap (compression proceeding while
    /// chunks were already on the air). Zero under the serial engine.
    pub overlap_saved: SimDuration,
}

/// Serializes as an object of per-stage nanosecond durations.
impl serde::Serialize for StageTimes {
    fn serialize(&self, out: &mut String) {
        let mut obj = serde::object(out);
        obj.field("precopy", &self.precopy)
            .field("preparation", &self.preparation)
            .field("checkpoint", &self.checkpoint)
            .field("transfer", &self.transfer)
            .field("restore", &self.restore)
            .field("reintegration", &self.reintegration)
            .field("overlap_saved", &self.overlap_saved);
        obj.end();
    }
}

/// Deserializes the per-stage duration object written by the
/// [`serde::Serialize`] impl above, field for field.
impl<'de> serde::Deserialize<'de> for StageTimes {
    fn deserialize(v: &serde::JsonValue) -> Result<Self, serde::DeError> {
        Ok(Self {
            precopy: v.read("precopy")?,
            preparation: v.read("preparation")?,
            checkpoint: v.read("checkpoint")?,
            transfer: v.read("transfer")?,
            restore: v.read("restore")?,
            reintegration: v.read("reintegration")?,
            overlap_saved: v.read("overlap_saved")?,
        })
    }
}

impl StageTimes {
    /// The busy time recorded for one report stage.
    pub fn of(&self, stage: MigrationStage) -> SimDuration {
        match stage {
            MigrationStage::Preparation => self.preparation,
            MigrationStage::Checkpoint => self.checkpoint,
            MigrationStage::Transfer => self.transfer,
            MigrationStage::Restore => self.restore,
            MigrationStage::Reintegration => self.reintegration,
        }
    }

    /// Total busy time across stages (Figure 12). Excludes retry backoff,
    /// which [`MigrationReport::backoff`] reports separately so the
    /// accounting balances: wall time = stage total − overlap + backoff.
    pub fn total(&self) -> SimDuration {
        self.precopy
            + self.preparation
            + self.checkpoint
            + self.transfer
            + self.restore
            + self.reintegration
    }

    /// Wall-clock migration time: total busy time minus the latency the
    /// pipeline overlap hid. Equals [`total`](Self::total) when serial.
    pub fn wall_total(&self) -> SimDuration {
        self.total().saturating_sub(self.overlap_saved)
    }

    /// User-perceived time: pre-copy, preparation and checkpoint overlap
    /// the foreground app and the migration-target menu, so users mostly
    /// see transfer onward (§4). Pipelined compression overlaps the radio,
    /// so the overlap saving comes off the perceived wait too.
    pub fn user_perceived(&self) -> SimDuration {
        (self.transfer + self.restore + self.reintegration).saturating_sub(self.overlap_saved)
    }

    /// User-perceived time excluding the transfer stage (Figure 14).
    pub fn user_perceived_sans_transfer(&self) -> SimDuration {
        self.restore + self.reintegration
    }
}

/// Bytes moved by a migration (Figure 15).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TransferLedger {
    /// Uncompressed checkpoint image size.
    pub image_raw: ByteSize,
    /// Compressed image bytes the transfer stage ships after the freeze.
    /// With pre-copy this is the dirtied residue (plus metadata and log);
    /// with a warm cache, chunk hits are already subtracted.
    pub image_compressed: ByteSize,
    /// Compressed record-log bytes.
    pub log_compressed: ByteSize,
    /// APK/data-directory delta shipped by the verification sync.
    pub data_delta: ByteSize,
    /// Compressed image bytes streamed by pre-copy rounds before the
    /// freeze. Zero under the serial engine.
    pub precopy_streamed: ByteSize,
    /// Compressed image bytes the guest's content-addressed cache already
    /// held, skipped from the air entirely. Zero with a cold cache.
    pub cache_hit: ByteSize,
}

/// Serializes as an object of raw byte counts.
impl serde::Serialize for TransferLedger {
    fn serialize(&self, out: &mut String) {
        let mut obj = serde::object(out);
        obj.field("image_raw", &self.image_raw)
            .field("image_compressed", &self.image_compressed)
            .field("log_compressed", &self.log_compressed)
            .field("data_delta", &self.data_delta)
            .field("precopy_streamed", &self.precopy_streamed)
            .field("cache_hit", &self.cache_hit);
        obj.end();
    }
}

impl<'de> serde::Deserialize<'de> for TransferLedger {
    fn deserialize(v: &serde::JsonValue) -> Result<Self, serde::DeError> {
        Ok(Self {
            image_raw: v.read("image_raw")?,
            image_compressed: v.read("image_compressed")?,
            log_compressed: v.read("log_compressed")?,
            data_delta: v.read("data_delta")?,
            precopy_streamed: v.read("precopy_streamed")?,
            cache_hit: v.read("cache_hit")?,
        })
    }
}

impl TransferLedger {
    /// Bytes the post-freeze transfer stage puts over the air.
    pub fn total(&self) -> ByteSize {
        self.image_compressed + self.data_delta
    }

    /// Every byte that crossed the air, pre-copy streaming included.
    pub fn over_air_total(&self) -> ByteSize {
        self.image_compressed + self.data_delta + self.precopy_streamed
    }
}

/// A completed migration.
#[derive(Debug, Clone)]
pub struct MigrationReport {
    /// Migrated package.
    pub package: String,
    /// Home device name.
    pub from: String,
    /// Guest device name.
    pub to: String,
    /// Per-stage times, accumulated across attempts.
    pub stages: StageTimes,
    /// Byte accounting.
    pub ledger: TransferLedger,
    /// Replay statistics.
    pub replay: ReplayStats,
    /// INET endpoints dropped at restore (the app sees a connectivity
    /// change instead).
    pub dropped_connections: Vec<String>,
    /// Views redrawn during conditional re-initialisation.
    pub redrawn_views: usize,
    /// Attempts made (1 when no fault struck).
    pub attempts: u32,
    /// Fault events that hit this migration.
    pub faults: u32,
    /// Retry backoff charged to virtual time, outside the stage times.
    pub backoff: SimDuration,
    /// Mid-stage lifecycle interrupts the engine delivered, in delivery
    /// order. Deliberately kept out of the serialized report: the report
    /// JSON is pinned by recorded benches that predate interrupts, and an
    /// undisturbed run carries none.
    pub interrupts: Vec<InterruptRecord>,
}

impl serde::Serialize for MigrationReport {
    fn serialize(&self, out: &mut String) {
        let mut obj = serde::object(out);
        obj.field("package", &self.package)
            .field("from", &self.from)
            .field("to", &self.to)
            .field("stages", &self.stages)
            .field("ledger", &self.ledger)
            .field("replay", &self.replay)
            .field("dropped_connections", &self.dropped_connections)
            .field("redrawn_views", &self.redrawn_views)
            .field("attempts", &self.attempts)
            .field("faults", &self.faults)
            .field("backoff", &self.backoff);
        obj.end();
    }
}

impl<'de> serde::Deserialize<'de> for MigrationReport {
    fn deserialize(v: &serde::JsonValue) -> Result<Self, serde::DeError> {
        Ok(Self {
            package: v.read("package")?,
            from: v.read("from")?,
            to: v.read("to")?,
            stages: v.read("stages")?,
            ledger: v.read("ledger")?,
            replay: v.read("replay")?,
            dropped_connections: v.read("dropped_connections")?,
            redrawn_views: v.read("redrawn_views")?,
            attempts: v.read("attempts")?,
            faults: v.read("faults")?,
            backoff: v.read("backoff")?,
            interrupts: Vec::new(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_names_match_the_declared_engine_stages() {
        // Every report stage must be implemented by an engine stage of the
        // same wire name, so spans/metrics derived from either agree.
        let engine_names: Vec<&str> = crate::engine::STAGES.iter().map(|s| s.name()).collect();
        for stage in MigrationStage::ALL {
            assert!(
                engine_names.contains(&stage.name()),
                "report stage {stage} has no engine stage"
            );
            assert_eq!(stage.to_string(), stage.name());
        }
        // And the telemetry crate's declared report-stage list is the same
        // five names in the same order.
        assert_eq!(
            flux_telemetry::REPORT_STAGES.to_vec(),
            MigrationStage::ALL.map(|s| s.name()).to_vec()
        );
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let p = RetryPolicy::default();
        assert_eq!(p.backoff_after(1), SimDuration::from_millis(200));
        assert_eq!(p.backoff_after(2), SimDuration::from_millis(400));
        assert_eq!(p.backoff_after(3), SimDuration::from_millis(800));
        assert_eq!(p.backoff_after(30), SimDuration::from_secs(5));
    }

    #[test]
    fn stage_times_of_reads_the_matching_slot() {
        let times = StageTimes {
            preparation: SimDuration::from_millis(1),
            checkpoint: SimDuration::from_millis(2),
            transfer: SimDuration::from_millis(3),
            restore: SimDuration::from_millis(4),
            reintegration: SimDuration::from_millis(5),
            ..StageTimes::default()
        };
        let sum: SimDuration = MigrationStage::ALL
            .iter()
            .map(|s| times.of(*s))
            .fold(SimDuration::ZERO, |a, b| a + b);
        assert_eq!(sum, times.total());
    }
}
