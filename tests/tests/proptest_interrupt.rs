//! Mid-stage interrupt delivery, property-tested.
//!
//! The interruptible engine's contract: lifecycle events anchored to
//! in-flight stages land on slice boundaries deterministically — the
//! same schedule replays byte-identically, the executor stays invisible
//! (serial ≡ parallel for any interrupt mix), and a schedule that never
//! comes due is indistinguishable from no schedule at all (the arming
//! machinery must cost nothing observable, which is what keeps the
//! golden pins byte-stable).

mod common;

use flux_core::{
    migrate, FleetConfig, FleetScheduler, FluxWorld, LifecycleEvent, MigrationConfig,
    MigrationRequest, MigrationSpec, MigrationStage, ParallelExecutor, RetryPolicy,
};
use flux_simcore::SimDuration;
use flux_telemetry::export::{chrome_trace, json_snapshot};
use proptest::prelude::*;

/// Migratable Table 3 apps (no `multi_process`, no `preserve_egl`).
const POOL: [&str; 4] = ["WhatsApp", "Twitter", "Instagram", "Netflix"];

/// One randomly drawn stage-anchored interrupt. Pause and Stop may
/// anchor anywhere; a Kill delivered after the image ships would race
/// the guest hand-off the paper scopes out, so kills stay on the
/// stages that still own home-side state.
fn interrupt_spec(
    stage_sel: usize,
    event_sel: usize,
    offset_ms: u64,
) -> (MigrationStage, SimDuration, LifecycleEvent) {
    let event = [
        LifecycleEvent::Pause,
        LifecycleEvent::Stop,
        LifecycleEvent::Kill,
    ][event_sel % 3];
    let stages = if event == LifecycleEvent::Kill {
        &[
            MigrationStage::Preparation,
            MigrationStage::Checkpoint,
            MigrationStage::Transfer,
        ][..]
    } else {
        &MigrationStage::ALL[..]
    };
    (
        stages[stage_sel % stages.len()],
        SimDuration::from_millis(offset_ms),
        event,
    )
}

fn requests_for(
    pairs: &[(flux_core::DeviceId, flux_core::DeviceId, String)],
    plans: &[(usize, usize, u64)],
    victim: Option<u64>,
) -> Vec<MigrationRequest> {
    pairs
        .iter()
        .enumerate()
        .map(|(i, (home, guest, pkg))| {
            let id = i as u64 + 1;
            let mut req = MigrationRequest::new(id, *home, *guest, pkg);
            if let Some(&(s, e, ms)) = plans.get(i) {
                let (stage, offset, event) = interrupt_spec(s, e, ms);
                req = req.with_interrupt(stage, offset, event);
            }
            if victim == Some(id) {
                req = req
                    .with_faults(common::blanket_drops())
                    .with_config(MigrationConfig {
                        retry: RetryPolicy::none(),
                        ..MigrationConfig::default()
                    });
            }
            req
        })
        .collect()
}

/// Everything observable from one fleet run, rendered to bytes.
fn run_image(
    mut world: FluxWorld,
    requests: Vec<MigrationRequest>,
    limit: usize,
    workers: Option<usize>,
) -> (String, flux_simcore::SimTime, String, String) {
    let mut scheduler = FleetScheduler::new(FleetConfig {
        max_in_flight: limit,
        ..FleetConfig::default()
    })
    .unwrap();
    if let Some(w) = workers {
        scheduler = scheduler.with_executor(ParallelExecutor::new(w));
    }
    let report = scheduler.run(&mut world, requests).unwrap();
    let now = world.clock.now();
    world.telemetry.finish(now);
    (
        format!("{report:?}"),
        now,
        chrome_trace(&world.telemetry),
        json_snapshot(&world.telemetry),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any mix of stage-anchored interrupts and fault plans replays
    /// byte-identically and is executor-invisible: serial, 2-worker and
    /// 8-worker runs all produce the same report, clock and telemetry.
    #[test]
    fn interrupted_fleets_are_deterministic_and_executor_invisible(
        seed in 0..100_000u64,
        n in 2..5usize,
        limit in 1..4usize,
        plans in prop::collection::vec((0..8usize, 0..3usize, 0..4_000u64), 4),
        victim_sel in 0..8u64,
    ) {
        let apps = &POOL[..n];
        let victim = (victim_sel < n as u64).then_some(victim_sel + 1);

        let (world, pairs) = common::fleet_world(apps, seed);
        let baseline = run_image(world, requests_for(&pairs, &plans, victim), limit, None);

        // Slice-boundary determinism: an identical second pass.
        let (world, pairs) = common::fleet_world(apps, seed);
        let second = run_image(world, requests_for(&pairs, &plans, victim), limit, None);
        prop_assert_eq!(&baseline, &second, "serial double pass diverged");

        for workers in [2usize, 8] {
            let (world, pairs) = common::fleet_world(apps, seed);
            let run = run_image(
                world,
                requests_for(&pairs, &plans, victim),
                limit,
                Some(workers),
            );
            prop_assert_eq!(&baseline, &run, "diverged at {} workers", workers);
        }
    }

    /// An interrupt that never comes due is invisible: the run is
    /// byte-identical to one with no schedule at all. (Arming rides the
    /// timeline; pricing must not change until something is delivered.)
    #[test]
    fn never_due_interrupts_leave_the_run_byte_identical(
        seed in 0..100_000u64,
        app_sel in 0..POOL.len(),
        stage_sel in 0..8usize,
        event_sel in 0..3usize,
    ) {
        let (stage, _, event) = interrupt_spec(stage_sel, event_sel, 0);

        let (mut world, home, guest, pkg) = common::staged(POOL[app_sel], seed);
        let bare = migrate(&mut world, MigrationSpec::new(&pkg).between(home, guest)).unwrap();
        let bare_clock = world.clock.now();

        let (mut world, home, guest, pkg) = common::staged(POOL[app_sel], seed);
        let spec = MigrationSpec::new(&pkg)
            .between(home, guest)
            // Armed when the stage enters, due an hour after the whole
            // migration has finished: never delivered.
            .interrupt(stage, SimDuration::from_secs(3_600), event);
        let armed = migrate(&mut world, spec).unwrap();

        prop_assert!(armed.interrupts.is_empty(), "nothing may be delivered");
        prop_assert_eq!(format!("{bare:?}"), format!("{armed:?}"));
        prop_assert_eq!(bare_clock, world.clock.now());
    }
}
