//! Exporters: Chrome trace JSON, per-stage migration profiles and plain
//! JSON snapshots.
//!
//! All three are deterministic functions of a [`Telemetry`] hub: spans and
//! instant events are written in emission order and metrics in name order,
//! so two runs with the same seed produce byte-identical output. Call
//! [`Telemetry::finish`] before exporting so no span is left open (open
//! spans export with zero duration).

use crate::json::{escape, JsonValue};
use crate::metrics::Metric;
use crate::Telemetry;
use flux_simcore::{SimDuration, TraceKind};
use std::fmt::Write as _;

/// Span-name prefix shared by every migration stage span. The suffix is
/// the engine's declared stage name (`Stage::name()` in `flux-core`), so
/// span names are derived, never hand-written per call site.
pub const STAGE_SPAN_PREFIX: &str = "migration.stage.";

/// The stage names that carry a slot in the migration report, in pipeline
/// order. [`STAGE_SPANS`] is exactly this list run through
/// [`stage_span_name`]; a unit test pins the correspondence.
pub const REPORT_STAGES: [&str; 5] = [
    "preparation",
    "checkpoint",
    "transfer",
    "restore",
    "reintegration",
];

/// The span name a stage named `stage` records under:
/// `migration.stage.<stage>`.
pub fn stage_span_name(stage: &str) -> String {
    format!("{STAGE_SPAN_PREFIX}{stage}")
}

/// The histogram metric a stage's busy milliseconds are observed under:
/// `flux.migration.stage_ms.<stage>`.
pub fn stage_metric_name(stage: &str) -> String {
    format!("flux.migration.stage_ms.{stage}")
}

/// The canonical stage-span names the migration pipeline emits, in
/// pipeline order. [`MigrationProfile`] aggregates over exactly these.
pub const STAGE_SPANS: [&str; 5] = [
    "migration.stage.preparation",
    "migration.stage.checkpoint",
    "migration.stage.transfer",
    "migration.stage.restore",
    "migration.stage.reintegration",
];

fn kind_str(kind: TraceKind) -> &'static str {
    match kind {
        TraceKind::Generic => "generic",
        TraceKind::Fault => "fault",
        TraceKind::Retry => "retry",
        TraceKind::Rollback => "rollback",
    }
}

/// Nanoseconds rendered as a JSON microsecond literal with fixed
/// sub-microsecond precision (`1234567` ns → `1234.567`), the unit Chrome's
/// `about://tracing` expects.
fn us(ns: u64) -> String {
    format!("{}.{:03}", ns / 1_000, ns % 1_000)
}

/// Exports the hub as Chrome `about://tracing` JSON.
///
/// Each lane becomes one trace "process" (named via a `process_name`
/// metadata event), spans become complete (`"X"`) events and instant
/// events become thread-scoped (`"i"`) events. Load the output via
/// chrome://tracing or <https://ui.perfetto.dev>.
pub fn chrome_trace(tele: &Telemetry) -> String {
    let mut out = String::from("{\"traceEvents\":[");
    let mut first = true;
    let mut push = |out: &mut String, ev: String| {
        if !std::mem::take(&mut first) {
            out.push(',');
        }
        out.push_str(&ev);
    };
    for (i, lane) in tele.lanes().iter().enumerate() {
        push(
            &mut out,
            format!(
                "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{i},\"tid\":0,\
                 \"args\":{{\"name\":\"{}\"}}}}",
                escape(lane)
            ),
        );
    }
    for span in tele.spans() {
        push(
            &mut out,
            format!(
                "{{\"name\":\"{}\",\"cat\":\"span\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\
                 \"pid\":{},\"tid\":0}}",
                escape(&span.name),
                us(span.start.as_nanos()),
                us(span.duration().as_nanos()),
                span.lane.0
            ),
        );
    }
    for ev in tele.instants() {
        push(
            &mut out,
            format!(
                "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{},\
                 \"pid\":{},\"tid\":0,\"args\":{{\"detail\":\"{}\"}}}}",
                escape(&ev.name),
                kind_str(ev.kind),
                us(ev.at.as_nanos()),
                ev.lane.0,
                escape(&ev.detail)
            ),
        );
    }
    out.push_str("],\"displayTimeUnit\":\"ms\"}");
    out
}

/// Exports the hub as a plain JSON snapshot: lanes, spans, instant events
/// and metrics. Used by benches and golden tests; parse it back with
/// [`crate::json::parse`].
pub fn json_snapshot(tele: &Telemetry) -> String {
    let spans = tele
        .spans()
        .iter()
        .map(|s| {
            JsonValue::Obj(vec![
                ("name".into(), JsonValue::Str(s.name.clone())),
                ("lane".into(), JsonValue::Num(s.lane.0.to_string())),
                (
                    "parent".into(),
                    s.parent
                        .map(|p| JsonValue::Num(p.0.to_string()))
                        .unwrap_or(JsonValue::Null),
                ),
                (
                    "start_ns".into(),
                    JsonValue::Num(s.start.as_nanos().to_string()),
                ),
                (
                    "end_ns".into(),
                    s.end
                        .map(|e| JsonValue::Num(e.as_nanos().to_string()))
                        .unwrap_or(JsonValue::Null),
                ),
            ])
        })
        .collect();
    let instants = tele
        .instants()
        .iter()
        .map(|e| {
            JsonValue::Obj(vec![
                ("at_ns".into(), JsonValue::Num(e.at.as_nanos().to_string())),
                ("lane".into(), JsonValue::Num(e.lane.0.to_string())),
                ("kind".into(), JsonValue::Str(kind_str(e.kind).into())),
                ("name".into(), JsonValue::Str(e.name.clone())),
                ("detail".into(), JsonValue::Str(e.detail.clone())),
            ])
        })
        .collect();
    let metrics = tele
        .metrics()
        .iter()
        .map(|(name, metric)| {
            let v = match metric {
                Metric::Counter(c) => JsonValue::Num(c.to_string()),
                Metric::Gauge(g) => JsonValue::Num(fmt_f64(*g)),
                Metric::Histogram(h) => JsonValue::Obj(vec![
                    (
                        "bounds".into(),
                        JsonValue::Arr(
                            h.bounds()
                                .iter()
                                .map(|b| JsonValue::Num(b.to_string()))
                                .collect(),
                        ),
                    ),
                    (
                        "counts".into(),
                        JsonValue::Arr(
                            h.counts()
                                .iter()
                                .map(|c| JsonValue::Num(c.to_string()))
                                .collect(),
                        ),
                    ),
                    ("count".into(), JsonValue::Num(h.count().to_string())),
                    ("sum".into(), JsonValue::Num(h.sum().to_string())),
                ]),
            };
            (name.to_owned(), v)
        })
        .collect();
    JsonValue::Obj(vec![
        (
            "lanes".into(),
            JsonValue::Arr(
                tele.lanes()
                    .iter()
                    .map(|l| JsonValue::Str(l.clone()))
                    .collect(),
            ),
        ),
        ("spans".into(), JsonValue::Arr(spans)),
        ("instants".into(), JsonValue::Arr(instants)),
        ("metrics".into(), JsonValue::Obj(metrics)),
        (
            "dropped_events".into(),
            JsonValue::Num(tele.dropped_events().to_string()),
        ),
    ])
    .to_string()
}

/// Deterministic `f64` rendering: Rust's shortest-round-trip formatting,
/// with a `.0` appended to integral values so the output stays a JSON
/// float. Identical bits render identically, which is all byte-stability
/// needs.
fn fmt_f64(v: f64) -> String {
    let s = format!("{v}");
    if s.contains(['.', 'e', 'E', 'n', 'i']) {
        s
    } else {
        format!("{s}.0")
    }
}

/// A per-stage migration profile: Figure 13's stage breakdown computed
/// from one instrumented run's span totals.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MigrationProfile {
    /// `(stage name, accumulated duration)` in pipeline order. Durations
    /// accumulate across retry attempts, exactly like
    /// `MigrationReport::stages`.
    pub stages: Vec<(String, SimDuration)>,
    /// Retry backoff charged outside the stages.
    pub backoff: SimDuration,
    /// `flux.migration.attempts` at export time.
    pub attempts: u64,
    /// `flux.migration.faults` at export time.
    pub faults: u64,
    /// `flux.migration.rollbacks` at export time.
    pub rollbacks: u64,
    /// `flux.net.bytes_transferred` at export time.
    pub bytes_over_air: u64,
}

impl MigrationProfile {
    /// Builds the profile from a hub's `migration.stage.*` span totals and
    /// migration metrics.
    pub fn from_telemetry(tele: &Telemetry) -> Self {
        Self {
            stages: STAGE_SPANS
                .iter()
                .map(|name| {
                    (
                        name.trim_start_matches("migration.stage.").to_owned(),
                        tele.span_total(name),
                    )
                })
                .collect(),
            backoff: tele.span_total("migration.backoff"),
            attempts: tele.metrics().counter("flux.migration.attempts"),
            faults: tele.metrics().counter("flux.migration.faults"),
            rollbacks: tele.metrics().counter("flux.migration.rollbacks"),
            bytes_over_air: tele.metrics().counter("flux.net.bytes_transferred"),
        }
    }

    /// Sum of the stage durations. For a successful migration this equals
    /// `MigrationReport::stages.total()`.
    pub fn total(&self) -> SimDuration {
        self.stages
            .iter()
            .map(|(_, d)| *d)
            .fold(SimDuration::ZERO, |a, d| a + d)
    }

    /// Renders the profile as an aligned plain-text table.
    pub fn render(&self) -> String {
        let total_ns = self.total().as_nanos();
        let mut out = String::new();
        let _ = writeln!(out, "{:<16} {:>12} {:>7}", "stage", "time", "share");
        let _ = writeln!(out, "{:-<16} {:->12} {:->7}", "", "", "");
        for (name, d) in &self.stages {
            let share = if total_ns == 0 {
                0.0
            } else {
                d.as_nanos() as f64 * 100.0 / total_ns as f64
            };
            let _ = writeln!(out, "{:<16} {:>12} {:>6.1}%", name, d.to_string(), share);
        }
        let _ = writeln!(out, "{:-<16} {:->12} {:->7}", "", "", "");
        let _ = writeln!(
            out,
            "{:<16} {:>12} {:>6.1}%",
            "total",
            self.total().to_string(),
            if total_ns == 0 { 0.0 } else { 100.0 }
        );
        let _ = writeln!(out, "backoff (outside stages): {}", self.backoff);
        let _ = writeln!(
            out,
            "attempts: {}  faults: {}  rollbacks: {}  bytes over air: {}",
            self.attempts, self.faults, self.rollbacks, self.bytes_over_air
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;
    use crate::LaneId;
    use flux_simcore::SimTime;

    fn hub() -> Telemetry {
        let mut tele = Telemetry::new();
        let home = tele.lane("home");
        let s = tele.enter(home, "migration.stage.checkpoint", SimTime::from_millis(5));
        tele.instant(
            home,
            TraceKind::Fault,
            "kernel.fault",
            SimTime::from_millis(7),
            "stall of 1ms",
        );
        tele.exit(s, SimTime::from_millis(30));
        tele.counter_add("flux.migration.attempts", 1);
        tele.counter_add("flux.net.bytes_transferred", 4096);
        tele.gauge_set("flux.net.goodput_mbps", 12.5);
        tele.observe("flux.migration.stage_ms", 25);
        tele
    }

    #[test]
    fn chrome_trace_is_valid_json_with_lane_processes() {
        let tele = hub();
        let doc = json::parse(&chrome_trace(&tele)).expect("valid json");
        let events = doc.get("traceEvents").and_then(|v| v.as_arr()).unwrap();
        // 2 process_name metadata + 1 span + 1 instant.
        assert_eq!(events.len(), 4);
        assert_eq!(
            events[1].get("args").unwrap().get("name").unwrap().as_str(),
            Some("home")
        );
        let span = &events[2];
        assert_eq!(span.get("ph").unwrap().as_str(), Some("X"));
        assert_eq!(span.get("ts").unwrap().as_f64(), Some(5_000.0));
        assert_eq!(span.get("dur").unwrap().as_f64(), Some(25_000.0));
    }

    #[test]
    fn snapshot_round_trips_and_is_stable() {
        let tele = hub();
        let snap = json_snapshot(&tele);
        let parsed = json::parse(&snap).expect("valid json");
        assert_eq!(parsed.to_string(), snap);
        assert_eq!(json_snapshot(&hub()), snap);
        let metrics = parsed.get("metrics").unwrap();
        assert_eq!(
            metrics.get("flux.net.goodput_mbps"),
            Some(&json::JsonValue::Num("12.5".into()))
        );
    }

    #[test]
    fn disabled_hub_exports_empty_but_valid_documents() {
        let tele = Telemetry::disabled();
        assert!(json::parse(&chrome_trace(&tele)).is_ok());
        let snap = json::parse(&json_snapshot(&tele)).unwrap();
        assert_eq!(snap.get("spans").unwrap().as_arr().unwrap().len(), 0);
    }

    #[test]
    fn profile_totals_match_span_totals() {
        let tele = hub();
        let profile = MigrationProfile::from_telemetry(&tele);
        assert_eq!(profile.total(), SimDuration::from_millis(25));
        assert_eq!(profile.attempts, 1);
        assert_eq!(profile.bytes_over_air, 4096);
        let rendered = profile.render();
        assert!(rendered.contains("checkpoint"));
        assert!(rendered.contains("100.0%"));
    }

    #[test]
    fn gauge_rendering_marks_integral_values_as_floats() {
        assert_eq!(fmt_f64(42.0), "42.0");
        assert_eq!(fmt_f64(42.25), "42.25");
        let mut tele = Telemetry::new();
        tele.gauge_set("flux.x", 3.0);
        assert!(json_snapshot(&tele).contains("\"flux.x\":3.0"));
    }

    #[test]
    fn instant_on_world_lane_keeps_lane_zero() {
        let mut tele = Telemetry::new();
        tele.emit(SimTime::from_millis(1), "net.chunk", "chunk 0");
        assert_eq!(tele.instants()[0].lane, LaneId::WORLD);
    }

    #[test]
    fn stage_spans_derive_from_the_report_stage_names() {
        for (span, stage) in STAGE_SPANS.iter().zip(REPORT_STAGES) {
            assert_eq!(*span, stage_span_name(stage));
            assert_eq!(span.strip_prefix(STAGE_SPAN_PREFIX), Some(stage));
            assert_eq!(
                stage_metric_name(stage),
                format!("flux.migration.stage_ms.{stage}")
            );
        }
    }
}
