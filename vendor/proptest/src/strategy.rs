//! The [`Strategy`] trait and core combinators.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of one type.
///
/// Unlike the real proptest, strategies here generate values directly (no
/// value trees, no shrinking).
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Erases the strategy's concrete type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// Always produces a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    pub(crate) inner: S,
    pub(crate) f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice among boxed strategies (`prop_oneof!`).
pub struct OneOf<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> OneOf<T> {
    /// Builds from a non-empty option list.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Self { options }
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.usize_in(0, self.options.len());
        self.options[idx].generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let lo = self.start as i128;
                let hi = self.end as i128;
                assert!(hi > lo, "empty range strategy");
                let span = (hi - lo) as u128;
                (lo + (u128::from(rng.next_u64()) % span) as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let lo = *self.start() as i128;
                let hi = *self.end() as i128;
                assert!(hi >= lo, "empty range strategy");
                let span = (hi - lo) as u128 + 1;
                (lo + (u128::from(rng.next_u64()) % span) as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($($s:ident.$idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A.0);
tuple_strategy!(A.0, B.1);
tuple_strategy!(A.0, B.1, C.2);
tuple_strategy!(A.0, B.1, C.2, D.3);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);
