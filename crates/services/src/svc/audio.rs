//! The AudioService.
//!
//! Volume indices are device-relative: the Adaptive Replay proxy rescales
//! a recorded `setStreamVolume` to the guest's range ("a proxy method could
//! be used to adjust volume levels of music being played in accordance with
//! the relative volume level differences between the home and guest
//! devices", §3.2). [`AudioService::max_volume`] is therefore part of the
//! public surface the proxies consult.

use crate::service::{ServiceCtx, SystemService};
use flux_binder::{BinderError, Parcel};
use flux_simcore::Uid;
use std::any::Any;
use std::collections::BTreeMap;

/// Number of Android stream types (voice, system, ring, music, alarm,
/// notification, bluetooth-sco, system-enforced, dtmf, tts).
pub const STREAM_COUNT: usize = 10;

/// The music stream, used by most workloads.
pub const STREAM_MUSIC: i32 = 3;

/// The audio service state.
#[derive(Debug)]
pub struct AudioService {
    max_volume: i32,
    volumes: [i32; STREAM_COUNT],
    muted: [bool; STREAM_COUNT],
    master_mute: bool,
    ringer_mode: i32,
    mode: i32,
    speakerphone: bool,
    bluetooth_sco: bool,
    bluetooth_a2dp: bool,
    focus_stack: Vec<(Uid, String)>,
    media_button_receivers: BTreeMap<Uid, String>,
    remote_control_clients: BTreeMap<(Uid, String), String>,
}

impl AudioService {
    /// Creates the service with the device's volume range.
    pub fn new(max_volume: i32) -> Self {
        Self {
            max_volume,
            volumes: [max_volume / 2; STREAM_COUNT],
            muted: [false; STREAM_COUNT],
            master_mute: false,
            ringer_mode: 2, // RINGER_MODE_NORMAL
            mode: 0,
            speakerphone: false,
            bluetooth_sco: false,
            bluetooth_a2dp: false,
            focus_stack: Vec::new(),
            media_button_receivers: BTreeMap::new(),
            remote_control_clients: BTreeMap::new(),
        }
    }

    /// The device's maximum volume index.
    pub fn max_volume(&self) -> i32 {
        self.max_volume
    }

    /// Current volume of a stream.
    pub fn stream_volume(&self, stream: i32) -> i32 {
        self.volumes
            .get(stream as usize)
            .copied()
            .unwrap_or_default()
    }

    /// The holder of audio focus, if any.
    pub fn focus_holder(&self) -> Option<&(Uid, String)> {
        self.focus_stack.last()
    }

    fn stream_index(&self, stream: i32) -> Result<usize, String> {
        let idx = stream as usize;
        if idx >= STREAM_COUNT {
            return Err(format!("bad stream type {stream}"));
        }
        Ok(idx)
    }
}

impl SystemService for AudioService {
    fn descriptor(&self) -> &'static str {
        "IAudioService"
    }

    fn registry_name(&self) -> &'static str {
        "audio"
    }

    fn on_call(
        &mut self,
        ctx: &mut ServiceCtx<'_>,
        method: &str,
        args: &Parcel,
    ) -> Result<Parcel, BinderError> {
        let fail = |reason: String| BinderError::TransactionFailed {
            interface: "IAudioService".into(),
            method: method.to_owned(),
            reason,
        };
        match method {
            "setStreamVolume" => {
                let idx = self.stream_index(args.i32(0)?).map_err(fail)?;
                self.volumes[idx] = args.i32(1)?.clamp(0, self.max_volume);
                Ok(Parcel::new())
            }
            "adjustStreamVolume" => {
                let idx = self.stream_index(args.i32(0)?).map_err(fail)?;
                let direction = args.i32(1)?.signum();
                self.volumes[idx] = (self.volumes[idx] + direction).clamp(0, self.max_volume);
                Ok(Parcel::new())
            }
            "getStreamVolume" => {
                let idx = self.stream_index(args.i32(0)?).map_err(fail)?;
                Ok(Parcel::new().with_i32(self.volumes[idx]))
            }
            "getStreamMaxVolume" => Ok(Parcel::new().with_i32(self.max_volume)),
            "setStreamMute" => {
                let idx = self.stream_index(args.i32(0)?).map_err(fail)?;
                self.muted[idx] = args.bool(1)?;
                Ok(Parcel::new())
            }
            "isStreamMute" => {
                let idx = self.stream_index(args.i32(0)?).map_err(fail)?;
                Ok(Parcel::new().with_bool(self.muted[idx]))
            }
            "setMasterMute" => {
                self.master_mute = args.bool(0)?;
                Ok(Parcel::new())
            }
            "isMasterMute" => Ok(Parcel::new().with_bool(self.master_mute)),
            "setRingerMode" => {
                self.ringer_mode = args.i32(0)?;
                Ok(Parcel::new())
            }
            "getRingerMode" => Ok(Parcel::new().with_i32(self.ringer_mode)),
            "setMode" => {
                self.mode = args.i32(0)?;
                Ok(Parcel::new())
            }
            "getMode" => Ok(Parcel::new().with_i32(self.mode)),
            "setSpeakerphoneOn" => {
                self.speakerphone = args.bool(0)?;
                Ok(Parcel::new())
            }
            "isSpeakerphoneOn" => Ok(Parcel::new().with_bool(self.speakerphone)),
            "setBluetoothScoOn" => {
                self.bluetooth_sco = args.bool(0)?;
                Ok(Parcel::new())
            }
            "isBluetoothScoOn" => Ok(Parcel::new().with_bool(self.bluetooth_sco)),
            "setBluetoothA2dpOn" => {
                self.bluetooth_a2dp = args.bool(0)?;
                Ok(Parcel::new())
            }
            "isBluetoothA2dpOn" => Ok(Parcel::new().with_bool(self.bluetooth_a2dp)),
            "requestAudioFocus" => {
                let client_id = args.str(4).or_else(|_| args.str(0))?.to_owned();
                self.focus_stack.retain(|(_, c)| c != &client_id);
                self.focus_stack.push((ctx.caller_uid, client_id));
                Ok(Parcel::new().with_i32(1)) // AUDIOFOCUS_REQUEST_GRANTED
            }
            "abandonAudioFocus" => {
                let client_id = args.str(1).or_else(|_| args.str(0))?.to_owned();
                self.focus_stack.retain(|(_, c)| c != &client_id);
                Ok(Parcel::new().with_i32(1))
            }
            "unregisterAudioFocusClient" => {
                let client_id = args.str(0)?.to_owned();
                self.focus_stack.retain(|(_, c)| c != &client_id);
                Ok(Parcel::new())
            }
            "getCurrentAudioFocus" => {
                Ok(Parcel::new().with_i32(self.focus_stack.last().map(|_| 1).unwrap_or(0)))
            }
            "registerMediaButtonIntent" => {
                let pi = args.str(0)?.to_owned();
                self.media_button_receivers.insert(ctx.caller_uid, pi);
                Ok(Parcel::new())
            }
            "unregisterMediaButtonIntent" => {
                self.media_button_receivers.remove(&ctx.caller_uid);
                Ok(Parcel::new())
            }
            "registerRemoteControlClient" => {
                let intent = args.str(0)?.to_owned();
                let client = args.str(1).unwrap_or("rcc").to_owned();
                self.remote_control_clients
                    .insert((ctx.caller_uid, intent), client);
                Ok(Parcel::new().with_i32(self.remote_control_clients.len() as i32))
            }
            "unregisterRemoteControlClient" => {
                let intent = args.str(0)?.to_owned();
                self.remote_control_clients
                    .remove(&(ctx.caller_uid, intent));
                Ok(Parcel::new())
            }
            // Everything else on the 71-method surface is either a query
            // answered from defaults or has no migratable state.
            _ => Ok(Parcel::new()),
        }
    }

    fn on_uid_death(&mut self, _ctx: &mut ServiceCtx<'_>, uid: Uid) {
        self.focus_stack.retain(|(u, _)| *u != uid);
        self.media_button_receivers.remove(&uid);
        self.remote_control_clients.retain(|(u, _), _| *u != uid);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}
