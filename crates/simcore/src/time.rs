//! Virtual time for the simulation.
//!
//! All costs in the Flux migration pipeline — trim-memory cascades, CRIU
//! image serialisation, WiFi transfer, replaying the record log — are
//! charged against a [`SimClock`]. Wall-clock time never leaks into
//! experiment results, which keeps the figures deterministic.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// An instant of virtual time, in nanoseconds since simulation start.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

/// A span of virtual time, in nanoseconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

/// Serializes as raw nanoseconds since the epoch.
impl serde::Serialize for SimTime {
    fn serialize(&self, out: &mut String) {
        serde::Serialize::serialize(&self.0, out);
    }
}

/// Serializes as raw nanoseconds.
impl serde::Serialize for SimDuration {
    fn serialize(&self, out: &mut String) {
        serde::Serialize::serialize(&self.0, out);
    }
}

/// Deserializes from raw nanoseconds since the epoch.
impl<'de> serde::Deserialize<'de> for SimTime {
    fn deserialize(v: &serde::JsonValue) -> Result<Self, serde::DeError> {
        u64::deserialize(v).map(SimTime)
    }
}

/// Deserializes from raw nanoseconds.
impl<'de> serde::Deserialize<'de> for SimDuration {
    fn deserialize(v: &serde::JsonValue) -> Result<Self, serde::DeError> {
        u64::deserialize(v).map(SimDuration)
    }
}

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);

    /// Creates a time from raw nanoseconds since the epoch.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Creates a time from milliseconds since the epoch.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Creates a time from whole seconds since the epoch.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// Nanoseconds since the epoch.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Milliseconds since the epoch, truncated.
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Seconds since the epoch as a float, for reporting.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Time elapsed since `earlier`, saturating to zero if `earlier` is later.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Creates a duration from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Creates a duration from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Creates a duration from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Creates a duration from fractional seconds, saturating at zero.
    pub fn from_secs_f64(s: f64) -> Self {
        SimDuration((s.max(0.0) * 1e9) as u64)
    }

    /// Raw nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Milliseconds, truncated.
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Seconds as a float, for reporting.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;

    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;

    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;

    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;

    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;

    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs.max(1))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.2}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.1}ms", self.0 as f64 / 1e6)
        } else {
            write!(f, "{}us", self.0 / 1_000)
        }
    }
}

/// The virtual clock shared by one simulation run.
///
/// Components *charge* time to the clock rather than sleeping:
///
/// ```
/// use flux_simcore::{SimClock, SimDuration};
///
/// let mut clock = SimClock::new();
/// clock.charge(SimDuration::from_millis(250));
/// assert_eq!(clock.now().as_millis(), 250);
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SimClock {
    now: SimTime,
}

impl SimClock {
    /// Creates a clock at the epoch.
    pub fn new() -> Self {
        Self::default()
    }

    /// The current virtual instant.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Advances the clock by `d`, returning the new instant.
    pub fn charge(&mut self, d: SimDuration) -> SimTime {
        self.now += d;
        self.now
    }

    /// Advances the clock to `t` if `t` is in the future; otherwise no-op.
    pub fn advance_to(&mut self, t: SimTime) {
        if t > self.now {
            self.now = t;
        }
    }

    /// Creates a clock already advanced to `t` — the restore half of clock
    /// persistence (the save half is just `clock.now()`).
    pub fn at(t: SimTime) -> Self {
        Self { now: t }
    }
}

/// Serializes as the current instant in raw nanoseconds.
impl serde::Serialize for SimClock {
    fn serialize(&self, out: &mut String) {
        serde::Serialize::serialize(&self.now, out);
    }
}

/// Deserializes from raw nanoseconds, yielding a clock at that instant.
impl<'de> serde::Deserialize<'de> for SimClock {
    fn deserialize(v: &serde::JsonValue) -> Result<Self, serde::DeError> {
        SimTime::deserialize(v).map(SimClock::at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_roundtrips() {
        let t = SimTime::from_millis(1_500);
        let d = SimDuration::from_millis(250);
        assert_eq!((t + d).as_millis(), 1_750);
        assert_eq!((t + d) - t, d);
        assert_eq!(t.since(t + d), SimDuration::ZERO);
    }

    #[test]
    fn duration_display_picks_sane_units() {
        assert_eq!(SimDuration::from_secs(2).to_string(), "2.00s");
        assert_eq!(SimDuration::from_millis(12).to_string(), "12.0ms");
        assert_eq!(SimDuration::from_micros(7).to_string(), "7us");
    }

    #[test]
    fn clock_charges_accumulate() {
        let mut c = SimClock::new();
        c.charge(SimDuration::from_secs(1));
        c.charge(SimDuration::from_millis(500));
        assert_eq!(c.now().as_millis(), 1_500);
    }

    #[test]
    fn advance_to_never_goes_backwards() {
        let mut c = SimClock::new();
        c.charge(SimDuration::from_secs(5));
        c.advance_to(SimTime::from_secs(3));
        assert_eq!(c.now(), SimTime::from_secs(5));
        c.advance_to(SimTime::from_secs(8));
        assert_eq!(c.now(), SimTime::from_secs(8));
    }

    #[test]
    fn duration_from_secs_f64_saturates_at_zero() {
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(0.001).as_millis(), 1);
    }
}
