//! Real cost of Adaptive Replay: full log replay against a live guest
//! service stack.

use criterion::{criterion_group, criterion_main, Criterion};
use flux_core::{pair, replay_log, WorldBuilder};
use flux_device::DeviceProfile;
use flux_workloads::spec;

fn bench_replay(c: &mut Criterion) {
    c.bench_function("replay/whatsapp_log_on_guest", |b| {
        b.iter_batched(
            || {
                // Record a workload on the home device, then hand the log
                // to a fresh guest with the app already present.
                let app = spec("WhatsApp").unwrap();
                let (mut world, ids) = WorldBuilder::new()
                    .seed(13)
                    .device("h", DeviceProfile::nexus4())
                    .device("g", DeviceProfile::nexus7_2013())
                    .app(0, app.clone())
                    .build()
                    .unwrap();
                let (home, guest) = (ids[0], ids[1]);
                world
                    .run_script(home, &app.package, &app.actions.clone())
                    .unwrap();
                pair(&mut world, home, guest).unwrap();
                // Deploy on the guest directly so replay has a target app.
                world.launch_app(guest, &app.package).unwrap();
                let uid = world.device(home).unwrap().app_uid(&app.package).unwrap();
                let log = world
                    .device(home)
                    .unwrap()
                    .records
                    .log(uid)
                    .unwrap()
                    .clone();
                (world, guest, app.package.clone(), log)
            },
            |(mut world, guest, package, log)| {
                replay_log(
                    &mut world,
                    guest,
                    &package,
                    &log,
                    flux_simcore::SimTime::ZERO,
                    &DeviceProfile::nexus4(),
                )
                .unwrap()
            },
            criterion::BatchSize::SmallInput,
        )
    });
}

criterion_group!(benches, bench_replay);
criterion_main!(benches);
