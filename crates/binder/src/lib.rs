//! A simulated Android Binder IPC driver.
//!
//! Binder is the mechanism through which Android apps reach every system
//! service, and it is the piece of kernel state CRIA works hardest to
//! checkpoint and restore (§3.3 of the Flux paper). This crate models the
//! driver at the level Flux cares about:
//!
//! * [`Parcel`] — typed transaction payloads with a compact wire encoding.
//! * [`BinderDriver`] — nodes, per-process handle tables, strong references,
//!   the reference-propagation invariant, and the ServiceManager registry
//!   reachable at handle 0.
//! * [`state`] — CRIA's capture/restore of per-process Binder state,
//!   classifying connections as internal, external-system (reconnected by
//!   name on the guest at the *same handle ids*) or external-non-system
//!   (which makes migration refuse to proceed).
//!
//! The driver is deliberately pure state: service dispatch lives in
//! `flux-services`, so the driver itself can be snapshotted.

pub mod driver;
pub mod error;
pub mod parcel;
pub mod state;

pub use driver::{
    BinderDriver, HandleEntry, HandleTable, Node, NodeId, NodeKind, RoutedTransaction,
    SERVICE_MANAGER_HANDLE,
};
pub use error::BinderError;
pub use parcel::{ObjRef, Parcel, ParcelError, Value};
pub use state::{PendingConnection, SavedBinderState, SavedHandle, SavedNode, SavedTarget};
